package federation

// The sharded decision plane: the mediator's sequential decision
// state — query clock, policy, accounting, shadow baselines, eviction
// watermark — partitioned by object so decisions on unrelated objects
// never serialize. Each partition owns its own lock and its own policy
// instance over a slice of the total capacity; a query touching
// objects in k partitions visits the partitions in ascending index
// order holding at most one partition lock at a time, while the
// snapshot/restore/attach barrier (lockAll) acquires every lock in the
// same ascending order — the two disciplines cannot deadlock.
//
// Object→partition placement is the FNV-1a hash of the object id
// masked by the power-of-two partition count, so placement depends
// only on the id and the count: ledger consumers and tests can group
// records per partition with the exported ShardOf.

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"

	"bypassyield/internal/core"
)

// NumShards normalizes a requested decision-partition count: 0 means
// GOMAXPROCS, and any count is rounded up to the next power of two so
// placement is a mask, not a modulo.
func NumShards(requested int) int {
	if requested <= 0 {
		requested = runtime.GOMAXPROCS(0)
	}
	return nextPow2(requested)
}

// nextPow2 returns the smallest power of two >= n (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// ShardOf maps an object to its owning decision partition under a
// power-of-two partition count.
func ShardOf(id core.ObjectID, shards int) int {
	h := fnv.New32a()
	h.Write([]byte(id)) //nolint:errcheck // fnv.Write cannot fail
	return int(h.Sum32()) & (shards - 1)
}

// shardCapacities splits the total cache capacity exactly across n
// partitions: partition i receives total/n plus one byte of the
// remainder, so Σ partition capacities = total.
func shardCapacities(total int64, n int) []int64 {
	caps := make([]int64, n)
	each, rem := total/int64(n), total%int64(n)
	for i := range caps {
		caps[i] = each
		if int64(i) < rem {
			caps[i]++
		}
	}
	return caps
}

// decisionShard is one partition of the decision plane. Everything
// below mu is guarded by it; a query holds at most one partition lock
// at a time, the all-partitions barrier holds them all.
type decisionShard struct {
	idx   int
	label string // telemetry label "s<idx>", precomputed

	mu sync.Mutex
	// t is the partition clock: the count of queries that have touched
	// this partition (each query advances each touched partition once).
	// It drives the partition policy's notion of time.
	t int64
	// replayBase is the partition clock at the restored snapshot
	// boundary; WAL replay under a matching partition layout skips
	// records at or below it (their effects are inside the snapshot).
	replayBase int64
	// replayLastG tracks the last global sequence replayed into this
	// partition when replaying across a partition-layout change, where
	// the recorded partition clocks are meaningless.
	replayLastG int64

	acct          core.Accounting
	policy        core.Policy
	shadows       *core.ShadowSet
	lastEvictions int64
}

// shardOf returns the owning partition for an object id.
func (m *Mediator) shardOf(id core.ObjectID) *decisionShard {
	return m.shards[ShardOf(id, len(m.shards))]
}

// lockAll acquires every partition lock in ascending order — the
// consistency barrier for snapshot, restore, attach, and aggregate
// reads. Queries also visit partitions in ascending order but hold at
// most one lock at a time, so the sweep cannot deadlock.
func (m *Mediator) lockAll() {
	for _, sh := range m.shards {
		sh.mu.Lock()
	}
}

// unlockAll releases the barrier in reverse order.
func (m *Mediator) unlockAll() {
	for i := len(m.shards) - 1; i >= 0; i-- {
		m.shards[i].mu.Unlock()
	}
}

// newShards builds the decision partitions: one policy instance per
// partition from the factory (or the single configured instance), a
// shadow baseline set per partition when enabled, and an exact split
// of the total capacity.
func newShards(cfg Config, n int, tel *core.Telemetry) ([]*decisionShard, error) {
	shards := make([]*decisionShard, n)
	caps := shardCapacities(cfg.Capacity, n)
	for i := range shards {
		sh := &decisionShard{idx: i, label: fmt.Sprintf("s%d", i)}
		switch {
		case cfg.NewPolicy != nil:
			pol, err := cfg.NewPolicy(i, caps[i])
			if err != nil {
				return nil, fmt.Errorf("federation: building policy for decision shard %d: %w", i, err)
			}
			sh.policy = pol
		case cfg.Policy != nil:
			sh.policy = cfg.Policy
		}
		if ts, ok := sh.policy.(core.TelemetrySetter); ok && cfg.Obs != nil {
			ts.SetTelemetry(tel)
		}
		if cfg.Shadows {
			var capacity int64
			if sh.policy != nil {
				capacity = sh.policy.Capacity()
			}
			sh.shadows = core.NewShadowSet(capacity)
			sh.shadows.SetTelemetry(tel)
		}
		shards[i] = sh
	}
	return shards, nil
}
