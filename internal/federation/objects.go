// Package federation implements the mediation layer of the paper's
// prototype: it names cacheable database objects (tables or columns),
// decomposes each query's yield across the objects it references, and
// drives a bypass-yield cache policy with full Figure-1 flow
// accounting.
package federation

import (
	"fmt"
	"sort"
	"strings"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/netcost"
)

// Granularity selects the class of cacheable object, the subject of
// the paper's Section 6.1 comparison.
type Granularity uint8

const (
	// Tables caches whole relations.
	Tables Granularity = iota
	// Columns caches individual attributes.
	Columns
	// Views caches materialized views (with whole tables as the
	// fallback for queries no view can answer) — the third object
	// class the paper names.
	Views
)

// String returns the granularity name.
func (g Granularity) String() string {
	switch g {
	case Tables:
		return "tables"
	case Columns:
		return "columns"
	case Views:
		return "views"
	default:
		return fmt.Sprintf("Granularity(%d)", uint8(g))
	}
}

// ParseGranularity parses "tables", "columns", or "views".
func ParseGranularity(s string) (Granularity, error) {
	switch strings.ToLower(s) {
	case "tables", "table":
		return Tables, nil
	case "columns", "column":
		return Columns, nil
	case "views", "view":
		return Views, nil
	default:
		return 0, fmt.Errorf("federation: unknown granularity %q", s)
	}
}

// TableObjectID names a table object: "release/table".
func TableObjectID(release, table string) core.ObjectID {
	return core.ObjectID(release + "/" + strings.ToLower(table))
}

// ColumnObjectID names a column object: "release/table.column".
func ColumnObjectID(release, table, column string) core.ObjectID {
	return core.ObjectID(release + "/" + strings.ToLower(table) + "." + strings.ToLower(column))
}

// ViewObjectID names a materialized-view object: "release/view:name".
func ViewObjectID(release, view string) core.ObjectID {
	return core.ObjectID(release + "/view:" + strings.ToLower(view))
}

// Objects builds the cacheable-object universe for a schema at the
// given granularity, with fetch costs from the network model. At
// Views granularity the universe holds every standard view plus every
// table (the fallback for queries no view can answer).
func Objects(s *catalog.Schema, g Granularity, nm *netcost.Model) map[core.ObjectID]core.Object {
	out := make(map[core.ObjectID]core.Object)
	for i := range s.Tables {
		t := &s.Tables[i]
		switch g {
		case Tables, Views:
			id := TableObjectID(s.Name, t.Name)
			out[id] = core.Object{
				ID:        id,
				Size:      t.Bytes(),
				FetchCost: nm.FetchCost(t.Bytes(), t.Site),
				Site:      t.Site,
			}
		case Columns:
			for j := range t.Columns {
				c := &t.Columns[j]
				id := ColumnObjectID(s.Name, t.Name, c.Name)
				size := c.Width() * t.Rows
				out[id] = core.Object{
					ID:        id,
					Size:      size,
					FetchCost: nm.FetchCost(size, t.Site),
					Site:      t.Site,
				}
			}
		}
	}
	if g == Views {
		for _, v := range catalog.StandardViews(s) {
			t := s.Table(v.Table)
			if t == nil {
				continue
			}
			size := v.Bytes(t)
			id := ViewObjectID(s.Name, v.Name)
			out[id] = core.Object{
				ID:        id,
				Size:      size,
				FetchCost: nm.FetchCost(size, t.Site),
				Site:      t.Site,
			}
		}
	}
	return out
}

// viewRegion converts a view's defining predicate to engine intervals.
func viewRegion(v *catalog.View) map[string]engine.Interval {
	region := make(map[string]engine.Interval, len(v.Preds))
	for _, p := range v.Preds {
		region[p.Column] = engine.Interval{Lo: p.Lo, Hi: p.Hi}
	}
	return region
}

// viewFor returns the smallest standard view able to answer the
// query's demands on table i — every referenced column present and
// the query region contained in the view's region — or nil when only
// the base table can.
func viewFor(s *catalog.Schema, b *engine.Bound, tableIdx int) *catalog.View {
	t := b.Tables[tableIdx]
	region := b.Region(tableIdx)
	var best *catalog.View
	var bestBytes int64
	views := catalog.StandardViews(s)
	for i := range views {
		v := &views[i]
		if v.Table != t.Name {
			continue
		}
		ok := true
		for _, r := range b.ReferencedColumns() {
			if r.TableIdx != tableIdx || r.Col == nil {
				continue
			}
			if !v.HasColumn(t, r.Col.Name) {
				ok = false
				break
			}
		}
		if !ok || !engine.RegionContains(viewRegion(v), region) {
			continue
		}
		if bytes := v.Bytes(t); best == nil || bytes < bestBytes {
			best = v
			bestBytes = bytes
		}
	}
	return best
}

// Decompose splits a query's yield across the objects it references,
// following Section 6 of the paper:
//
//   - Tables: "yield for each table ... is divided in proportion to
//     the table's contribution to the unique attributes in the query"
//     — each table's share is its count of distinct referenced
//     columns over the total.
//   - Columns: "query yield is proportional to each attribute based
//     on a ratio of storage size of the attribute to the total
//     storage sizes of all columns referenced in the query".
//
// Shares are integer bytes distributed by largest remainder so they
// sum exactly to the yield (byte conservation is tested).
func Decompose(b *engine.Bound, release string, yield int64, g Granularity) []core.Access {
	refs := b.ReferencedColumns()
	if len(refs) == 0 || yield < 0 {
		return nil
	}
	type share struct {
		id     core.ObjectID
		weight int64
	}
	var shares []share
	switch g {
	case Tables, Views:
		counts := make(map[string]int64)         // table name → attribute count
		objIDs := make(map[string]core.ObjectID) // table name → serving object
		for _, r := range refs {
			counts[r.Table.Name]++
		}
		for i, t := range b.Tables {
			if _, ok := counts[t.Name]; !ok {
				continue
			}
			objIDs[t.Name] = TableObjectID(release, t.Name)
			if g == Views {
				if v := viewFor(b.Schema, b, i); v != nil {
					objIDs[t.Name] = ViewObjectID(release, v.Name)
				}
			}
		}
		names := make([]string, 0, len(counts))
		for name := range counts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			id, ok := objIDs[name]
			if !ok {
				id = TableObjectID(release, name)
			}
			shares = append(shares, share{id, counts[name]})
		}
	case Columns:
		sorted := make([]engine.BoundCol, len(refs))
		copy(sorted, refs)
		sort.Slice(sorted, func(i, j int) bool {
			if sorted[i].Table.Name != sorted[j].Table.Name {
				return sorted[i].Table.Name < sorted[j].Table.Name
			}
			return sorted[i].Col.Name < sorted[j].Col.Name
		})
		for _, r := range sorted {
			shares = append(shares, share{ColumnObjectID(release, r.Table.Name, r.Col.Name), r.Col.Width()})
		}
	}

	var total int64
	for _, s := range shares {
		total += s.weight
	}
	if total == 0 {
		return nil
	}
	accesses := make([]core.Access, len(shares))
	var assigned int64
	type rem struct {
		idx int
		rem int64
	}
	rems := make([]rem, len(shares))
	for i, s := range shares {
		v := yield * s.weight
		accesses[i] = core.Access{Object: s.id, Yield: v / total}
		assigned += v / total
		rems[i] = rem{i, v % total}
	}
	// Largest-remainder distribution of the leftover bytes; ties
	// break by slice order (already deterministic).
	sort.SliceStable(rems, func(i, j int) bool { return rems[i].rem > rems[j].rem })
	for i := int64(0); i < yield-assigned; i++ {
		accesses[rems[int(i)%len(rems)].idx].Yield++
	}
	return accesses
}
