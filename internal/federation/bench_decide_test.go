package federation

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
)

// The decide-phase contention benchmark: parallel clients drive the
// mediator's decision phase directly (execution is lock-free and would
// only mask contention) over either disjoint per-client object sets —
// where a sharded decision plane should scale — or one shared hot set,
// where serialization is inherent.

const (
	benchTables   = 64 // object universe
	benchObjsPerQ = 4  // objects each query touches
	// Yield sized to the object scale: each access's share matches one
	// table's bytes, so online-by's ski-rental accumulator crosses once
	// and decisions settle into the cheap steady-state path (the
	// benchmark measures decision-plane serialization, not accumulator
	// arithmetic).
	benchYield     = benchObjsPerQ * 8 * 8
	benchTableRows = 8
)

// benchDecideSchema builds a release of n small single-column tables
// spread over four sites, so parallel clients can touch disjoint
// object sets.
func benchDecideSchema(n int) *catalog.Schema {
	s := &catalog.Schema{Name: "bench"}
	for i := 0; i < n; i++ {
		s.Tables = append(s.Tables, catalog.Table{
			Name: fmt.Sprintf("t%02d", i),
			Columns: []catalog.Column{
				{Name: "v", Type: catalog.Float64, Min: 0, Max: 1},
			},
			Rows: benchTableRows,
			Site: fmt.Sprintf("site-%d", i%4),
		})
	}
	return s
}

// benchMediator assembles a mediator over the bench schema with the
// given decision-shard count (0 = config default).
func benchMediator(b *testing.B, shards int) *Mediator {
	b.Helper()
	s := benchDecideSchema(benchTables)
	eng, err := engine.Open(s, engine.Config{Seed: 1})
	if err != nil {
		b.Fatalf("engine.Open: %v", err)
	}
	m, err := New(Config{
		Schema: s,
		Engine: eng,
		NewPolicy: func(shard int, capacity int64) (core.Policy, error) {
			return core.NewPolicyByName("online-by", capacity, 1+int64(shard))
		},
		// Everything fits: decisions settle into the cheap hit path, so
		// the benchmark measures decision-plane serialization rather
		// than policy eviction work.
		Capacity:    s.TotalBytes() * 2,
		Granularity: Tables,
		Shards:      shards,
	})
	if err != nil {
		b.Fatalf("New: %v", err)
	}
	return m
}

// benchAccesses pre-resolves one client's accesses: objsPerQ tables
// starting at table base, yield split evenly.
func benchAccesses(m *Mediator, base int) ([]core.Access, []core.Object) {
	accs := make([]core.Access, benchObjsPerQ)
	objs := make([]core.Object, benchObjsPerQ)
	for i := range accs {
		id := TableObjectID("bench", fmt.Sprintf("t%02d", (base+i)%benchTables))
		accs[i] = core.Access{Object: id, Yield: benchYield / benchObjsPerQ}
		objs[i] = m.Objects()[id]
	}
	return accs, objs
}

func benchmarkDecide(b *testing.B, shards int, disjoint bool) {
	m := benchMediator(b, shards)
	var clientSeq atomic.Int64
	var failed atomic.Int64
	var lockWaitUS atomic.Int64
	// At least 8 parallel clients regardless of host core count.
	b.SetParallelism(max(8/runtime.GOMAXPROCS(0), 1))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		base := 0
		if disjoint {
			// Each client owns a distinct table range; ranges tile the
			// universe so clients never share an object.
			base = int(clientSeq.Add(1)-1) * benchObjsPerQ % benchTables
		}
		accs, objs := benchAccesses(m, base)
		var wait int64
		for pb.Next() {
			res := &engine.Result{Bytes: benchYield}
			rep, err := m.decide("bench", "", res, accs, objs)
			if err != nil {
				failed.Add(1)
				return
			}
			wait += rep.LockWaitUS
		}
		lockWaitUS.Add(wait)
	})
	b.StopTimer()
	if failed.Load() != 0 {
		b.Fatalf("%d decide calls failed", failed.Load())
	}
	// Time blocked on partition locks per decide: the serialization the
	// sharded plane removes. On disjoint object sets this collapses to
	// ~0 with enough partitions even when wall-clock throughput is
	// bounded by the host's core count.
	b.ReportMetric(float64(lockWaitUS.Load())/float64(b.N), "lockwait-us/op")
	// The reconciliation invariant must survive the benchmark workload.
	acct := m.Accounting()
	if acct.DeliveredBytes() != acct.YieldBytes {
		b.Fatalf("D_A mismatch: delivered=%d yield=%d", acct.DeliveredBytes(), acct.YieldBytes)
	}
}

// BenchmarkMediatorDecide measures decision-phase throughput under
// parallel load. disjoint = every client touches its own objects (the
// shardable case); overlap = all clients hammer one hot object set.
func BenchmarkMediatorDecide(b *testing.B) {
	for _, n := range []int{1, 0, 32} { // 1 = single-partition baseline, 0 = default shard count
		name := fmt.Sprintf("shards=%d", n)
		if n == 0 {
			name = "shards=auto"
		}
		b.Run(name, func(b *testing.B) {
			b.Run("disjoint", func(b *testing.B) { benchmarkDecide(b, n, true) })
			b.Run("overlap", func(b *testing.B) { benchmarkDecide(b, n, false) })
		})
	}
}
