package federation

// Crash-safe persistence support: the mediator's decision state as a
// serializable value (State), a journal of per-access mutations
// emitted under the partition locks (Journal), and the replay entry
// point that reapplies journal records over a restored State. The
// persist manager (internal/persist) owns the files; this file owns
// the consistency boundary.
//
// The boundary is the all-partitions barrier (every partition lock,
// acquired in ascending order). Every mutation of a partition's
// sequential state — its clock, accounting, policy, journal emission —
// happens under that partition's lock, so a State captured under the
// barrier sits exactly between accesses on every partition: Σ decision
// yields = D_A holds per partition and globally in the captured
// accounting, and the journal rotated inside the same barrier
// (SnapshotState's barrier callback) partitions all records strictly
// into before-snapshot and after-snapshot. Recovery restores the State
// and replays the after-snapshot records; the invariant holds again at
// every replayed step.
//
// Two restore paths exist. When the snapshot's partition layout
// matches the running one, each section restores into its partition
// exactly and replay skips records by partition clock (rec.ShardT
// against the partition's replayBase). When the layouts differ (the
// daemon restarted with a different -decision-shards), the sections'
// accounting aggregates into partition 0, cache contents migrate by
// rehashing every cached object to its new owning partition
// (core.CacheSeeder), and replay skips by global sequence instead —
// exact for a snapshot taken at a quiescent barrier (clean shutdown),
// best-effort for records of queries that straddled the boundary.

import (
	"fmt"

	"bypassyield/internal/core"
)

// JournalKind classifies one journaled state mutation.
type JournalKind uint8

const (
	// JournalAccess is a policy-decided access (the normal path).
	JournalAccess JournalKind = iota + 1
	// JournalForced is a degraded-mode serve-from-cache: the owning
	// site was down and the cached copy was force-served as a hit.
	JournalForced
	// JournalFailed is a degraded-mode dropped leg: site down, object
	// not cached, nothing delivered and nothing charged.
	JournalFailed
)

// JournalRecord is one state mutation: everything replay needs to
// reproduce the access against a restored mediator. The object is
// referenced by id — the object universe is immutable and rebuilt
// from the schema on restart.
type JournalRecord struct {
	// Kind classifies the record.
	Kind JournalKind
	// T is the global query sequence at the access.
	T int64
	// ShardT is the owning decision partition's clock at the access
	// (equal to T on a single-partition plane's records from builds
	// before sharding).
	ShardT int64
	// Object is the accessed object's id.
	Object core.ObjectID
	// Yield is the access's yield share in bytes.
	Yield int64
	// Decision is the charged decision (Hit for Forced records;
	// meaningless for Failed).
	Decision core.Decision
}

// Journal receives one record per accounted access, called under the
// owning partition's lock — implementations must be fast, must not
// block on the network, must never call back into the mediator, and
// must tolerate concurrent calls from different partitions.
type Journal interface {
	JournalAccess(rec JournalRecord)
}

// ShardState is one decision partition's section of a State.
type ShardState struct {
	// Clock is the partition's query-touch clock at the boundary.
	Clock int64
	// Acct is the partition's flow accounting at the boundary.
	Acct core.Accounting
	// PolicyBlob is the partition policy's serialized decision state
	// (see core.StateSnapshotter); nil when the policy cannot
	// snapshot.
	PolicyBlob []byte
}

// State is the mediator's full decision-plane state at one
// consistency boundary. Schema, Granularity, PolicyName, and Capacity
// guard a restore against a reconfigured daemon: any mismatch rejects
// the snapshot (cold start) rather than adopting state the running
// configuration cannot honor. The partition count is NOT a guard —
// RestoreState rehashes a snapshot taken under a different layout.
type State struct {
	// Clock is the global query sequence at the boundary.
	Clock int64
	// Schema is the federated release name.
	Schema string
	// Granularity is the object granularity.
	Granularity Granularity
	// PolicyName names the cache policy ("none" when caching is
	// disabled).
	PolicyName string
	// Capacity is the plane's total capacity in bytes (0 for "none").
	Capacity int64
	// Acct is the aggregate flow accounting at the boundary
	// (Queries equals Clock).
	Acct core.Accounting
	// Shards holds one section per decision partition. Nil for
	// snapshots from builds before sharding, whose single section
	// lives in Clock/Acct/PolicyBlob.
	Shards []ShardState
	// PolicyBlob is the pre-sharding single-partition policy blob;
	// superseded by Shards on current snapshots.
	PolicyBlob []byte
}

// sections returns the snapshot's per-partition sections, lifting a
// pre-sharding snapshot into its single implicit section.
func (st State) sections() []ShardState {
	if st.Shards != nil {
		return st.Shards
	}
	return []ShardState{{Clock: st.Clock, Acct: st.Acct, PolicyBlob: st.PolicyBlob}}
}

// SetJournal attaches (or, with nil, detaches) the mutation journal.
func (m *Mediator) SetJournal(j Journal) {
	m.lockAll()
	m.journal = j
	m.unlockAll()
}

// SnapshotState captures the mediator's State under the
// all-partitions barrier. The optional barrier callback runs while
// every partition lock is still held: the persist manager rotates its
// WAL inside it, so no journal record can land between the state
// capture and the rotation — the captured State and the fresh WAL
// form an exact prefix/suffix partition of the access stream. The
// callback must not call back into the mediator; its error aborts the
// snapshot.
func (m *Mediator) SnapshotState(barrier func(State) error) (State, error) {
	m.lockAll()
	defer m.unlockAll()
	st := State{
		Clock:       m.g.Load(),
		Schema:      m.cfg.Schema.Name,
		Granularity: m.cfg.Granularity,
		PolicyName:  m.policyName,
		Capacity:    m.capacity,
		Acct:        m.accountingLocked(),
		Shards:      make([]ShardState, len(m.shards)),
	}
	for i, sh := range m.shards {
		sec := ShardState{Clock: sh.t, Acct: sh.acct}
		if ss, ok := sh.policy.(core.StateSnapshotter); ok {
			sec.PolicyBlob = ss.SnapshotState()
		}
		st.Shards[i] = sec
	}
	if barrier != nil {
		if err := barrier(st); err != nil {
			return State{}, err
		}
	}
	return st, nil
}

// RestoreState adopts a previously captured State: configuration
// guards first (schema, granularity, policy name and total capacity —
// any mismatch is an error and the mediator is left untouched), then
// the per-partition sections. A matching partition layout restores
// each section exactly (policy blob, clock, accounting); a mismatched
// layout aggregates accounting into partition 0 and migrates cache
// contents by rehashing each cached object to its new owning
// partition. Telemetry counters are seeded so a registry snapshot
// still reconciles with the restored accounting (core.yield_bytes =
// Acct.YieldBytes = D_A). Call before serving traffic; the decision
// ledger ring and shadow baselines are not part of State and restart
// empty (they are windowed audit views, not accounting).
func (m *Mediator) RestoreState(st State) error {
	m.lockAll()
	defer m.unlockAll()
	if st.Schema != m.cfg.Schema.Name {
		return fmt.Errorf("federation: snapshot for schema %q, mediator serves %q", st.Schema, m.cfg.Schema.Name)
	}
	if st.Granularity != m.cfg.Granularity {
		return fmt.Errorf("federation: snapshot at granularity %s, mediator configured for %s", st.Granularity, m.cfg.Granularity)
	}
	if st.PolicyName != m.policyName {
		return fmt.Errorf("federation: snapshot for policy %q, mediator runs %q", st.PolicyName, m.policyName)
	}
	if st.Capacity != m.capacity {
		return fmt.Errorf("federation: snapshot at capacity %d, mediator configured for %d", st.Capacity, m.capacity)
	}
	sections := st.sections()
	var err error
	if len(sections) == len(m.shards) {
		err = m.restoreExact(sections)
	} else {
		err = m.restoreRehash(st, sections)
	}
	if err != nil {
		return err
	}
	m.g.Store(st.Clock)
	m.queriesMet.Add(st.Clock)
	m.tel.SeedRestored(m.policyName, st.Acct)
	var evictions int64
	for _, sh := range m.shards {
		if sh.policy == nil {
			continue
		}
		ev := sh.policy.Evictions()
		evictions += ev
		sh.lastEvictions = ev
	}
	if evictions > 0 {
		m.tel.RecordEvictions(m.policyName, evictions)
	}
	return nil
}

// restoreExact restores one section per partition: the snapshot was
// taken under the running layout (partition capacities are a pure
// function of total capacity and count, so per-partition policy
// capacity guards pass). Replay then skips by partition clock.
func (m *Mediator) restoreExact(sections []ShardState) error {
	for i, sh := range m.shards {
		sec := sections[i]
		if len(sec.PolicyBlob) > 0 && sh.policy != nil {
			ss, ok := sh.policy.(core.StateSnapshotter)
			if !ok {
				return fmt.Errorf("federation: policy %q cannot restore persisted state", m.policyName)
			}
			if err := ss.RestoreState(sec.PolicyBlob); err != nil {
				return fmt.Errorf("federation: restoring decision shard %d: %w", i, err)
			}
		}
		sh.t = sec.Clock
		sh.replayBase = sec.Clock
		sh.acct = sec.Acct
	}
	m.replayRehash = false
	return nil
}

// restoreRehash adopts a snapshot taken under a different partition
// layout: aggregate accounting lands in partition 0 (per-partition
// attribution under the old layout is not recoverable, the global
// invariant is), and each section's cache contents are decoded into a
// staging policy at the section's original capacity, then rehashed
// object-by-object into the new owning partitions via
// core.CacheSeeder. Replay switches to global-sequence skipping.
func (m *Mediator) restoreRehash(st State, sections []ShardState) error {
	srcCaps := shardCapacities(st.Capacity, len(sections))
	var agg core.Accounting
	var clocks int64
	for _, sec := range sections {
		agg.Add(sec.Acct)
		clocks += sec.Clock
	}
	sh0 := m.shards[0]
	sh0.acct = agg
	sh0.t = clocks
	for _, sh := range m.shards[1:] {
		sh.acct = core.Accounting{}
		sh.t = 0
	}
	for i, sec := range sections {
		if len(sec.PolicyBlob) == 0 || m.shards[0].policy == nil {
			continue
		}
		staging, err := m.stagingPolicy(srcCaps[i])
		if err != nil {
			return fmt.Errorf("federation: building staging policy for rehash: %w", err)
		}
		if staging == nil {
			// The policy is not reconstructible here; accounting is
			// restored, the cache restarts cold.
			continue
		}
		ss, ok := staging.(core.StateSnapshotter)
		if !ok {
			continue
		}
		if err := ss.RestoreState(sec.PolicyBlob); err != nil {
			return fmt.Errorf("federation: decoding section %d for rehash: %w", i, err)
		}
		cl, ok := staging.(core.ContentLister)
		if !ok {
			continue
		}
		for _, id := range cl.Contents() {
			obj, known := m.objects[id]
			if !known {
				continue
			}
			if cs, seeds := m.shardOf(id).policy.(core.CacheSeeder); seeds {
				cs.SeedObject(obj)
			}
		}
	}
	m.replayRehash = true
	m.replayGBase = st.Clock
	return nil
}

// stagingPolicy builds a throwaway policy instance at the given
// capacity for decoding a foreign-layout section. Nil (with nil
// error) when no constructor is available.
func (m *Mediator) stagingPolicy(capacity int64) (core.Policy, error) {
	if m.cfg.NewPolicy != nil {
		return m.cfg.NewPolicy(0, capacity)
	}
	if pol, err := core.NewPolicyByName(m.policyName, capacity, 0); err == nil {
		return pol, nil
	}
	return nil, nil
}

// ReplayJournal reapplies one journal record over the restored state.
// The owning partition's policy re-decides the access to evolve its
// internal state, but the accounting charges the RECORDED decision —
// that is what the client was actually served before the crash. For
// deterministic policies restored from an exact same-layout snapshot
// the two always agree; diverged reports a disagreement (a randomized
// policy's uncaptured random stream, or a cross-layout rehash) so the
// persist manager can surface it as a metric instead of silently
// rewriting history. applied is false for records whose effects are
// already inside the restored snapshot (the prefix/suffix partition is
// per-file; the first file after a mid-stream snapshot can carry
// pre-boundary records). Unknown objects (a schema change between
// runs) are errors; the caller should abandon replay and fall back
// rather than apply a gapped suffix.
func (m *Mediator) ReplayJournal(rec JournalRecord) (applied, diverged bool, err error) {
	obj, ok := m.objects[rec.Object]
	if !ok {
		return false, false, fmt.Errorf("federation: journal references unknown object %s", rec.Object)
	}
	sh := m.shardOf(rec.Object)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if m.replayRehash {
		if rec.T <= m.replayGBase {
			return false, false, nil
		}
	} else if rec.ShardT <= sh.replayBase {
		return false, false, nil
	}
	// Advance the global sequence and the query count: each distinct T
	// was one mediated query. Replay is sequential; no CAS needed.
	if g := m.g.Load(); rec.T > g {
		m.queriesMet.Add(rec.T - g)
		m.g.Store(rec.T)
	}
	// Advance the partition clock. Under a matching layout the
	// recorded partition clock is authoritative; across a rehash it is
	// meaningless, so each distinct global sequence seen by this
	// partition counts as one touch.
	if m.replayRehash {
		if rec.T != sh.replayLastG {
			sh.t++
			sh.acct.Queries++
			sh.replayLastG = rec.T
		}
	} else if rec.ShardT > sh.t {
		sh.acct.Queries += rec.ShardT - sh.t
		sh.t = rec.ShardT
	}
	switch rec.Kind {
	case JournalAccess:
		d := core.Bypass
		if sh.policy != nil {
			d = sh.policy.Access(sh.t, obj, rec.Yield)
		}
		diverged = d != rec.Decision
		if err := core.Account(&sh.acct, obj, rec.Yield, rec.Decision); err != nil {
			return true, diverged, err
		}
		m.tel.RecordAccess(m.policyName, obj, rec.Yield, rec.Decision)
	case JournalForced:
		// The site was down and the cached copy was force-served; the
		// policy was not consulted then and is not consulted now.
		if err := core.Account(&sh.acct, obj, rec.Yield, core.Hit); err != nil {
			return true, false, err
		}
		m.tel.RecordForced(m.policyName, obj.Site, obj, rec.Yield)
	case JournalFailed:
		m.tel.RecordFailedLeg(obj.Site)
	default:
		return false, false, fmt.Errorf("federation: unknown journal kind %d", rec.Kind)
	}
	if sh.policy != nil {
		if ev := sh.policy.Evictions(); ev > sh.lastEvictions {
			m.tel.RecordEvictions(m.policyName, ev-sh.lastEvictions)
			sh.lastEvictions = ev
		}
	}
	return true, diverged, nil
}
