package federation

// Crash-safe persistence support: the mediator's decision state as a
// serializable value (State), a journal of per-access mutations
// emitted under the decision lock (Journal), and the replay entry
// point that reapplies journal records over a restored State. The
// persist manager (internal/persist) owns the files; this file owns
// the consistency boundary.
//
// The boundary is the decision lock m.mu. Every mutation of the
// mediator's sequential state — clock, accounting, policy, journal
// emission — happens under it, so a State captured under the lock
// sits exactly between two accesses: Σ decision yields = D_A holds in
// the captured accounting, and the journal rotated inside the same
// critical section (SnapshotState's barrier) partitions all records
// strictly into before-snapshot and after-snapshot. Recovery restores
// the State and replays the after-snapshot records; the invariant
// holds again at every replayed step.

import (
	"fmt"

	"bypassyield/internal/core"
)

// JournalKind classifies one journaled state mutation.
type JournalKind uint8

const (
	// JournalAccess is a policy-decided access (the normal path).
	JournalAccess JournalKind = iota + 1
	// JournalForced is a degraded-mode serve-from-cache: the owning
	// site was down and the cached copy was force-served as a hit.
	JournalForced
	// JournalFailed is a degraded-mode dropped leg: site down, object
	// not cached, nothing delivered and nothing charged.
	JournalFailed
)

// JournalRecord is one state mutation: everything replay needs to
// reproduce the access against a restored mediator. The object is
// referenced by id — the object universe is immutable and rebuilt
// from the schema on restart.
type JournalRecord struct {
	// Kind classifies the record.
	Kind JournalKind
	// T is the mediator clock (query sequence number) at the access.
	T int64
	// Object is the accessed object's id.
	Object core.ObjectID
	// Yield is the access's yield share in bytes.
	Yield int64
	// Decision is the charged decision (Hit for Forced records;
	// meaningless for Failed).
	Decision core.Decision
}

// Journal receives one record per accounted access, called under the
// mediator's decision lock — implementations must be fast, must not
// block on the network, and must never call back into the mediator.
type Journal interface {
	JournalAccess(rec JournalRecord)
}

// State is the mediator's full sequential decision state at one
// consistency boundary. Schema, Granularity, PolicyName, and Capacity
// guard a restore against a reconfigured daemon: any mismatch rejects
// the snapshot (cold start) rather than adopting state the running
// configuration cannot honor.
type State struct {
	// Clock is the query clock t at the boundary.
	Clock int64
	// Schema is the federated release name.
	Schema string
	// Granularity is the object granularity.
	Granularity Granularity
	// PolicyName names the cache policy ("none" when caching is
	// disabled).
	PolicyName string
	// Capacity is the policy's capacity in bytes (0 for "none").
	Capacity int64
	// Acct is the flow accounting at the boundary.
	Acct core.Accounting
	// PolicyBlob is the policy's serialized decision state (see
	// core.StateSnapshotter); nil when the policy cannot snapshot, in
	// which case a restore recovers accounting but the cache restarts
	// cold.
	PolicyBlob []byte
}

// SetJournal attaches (or, with nil, detaches) the mutation journal.
func (m *Mediator) SetJournal(j Journal) {
	m.mu.Lock()
	m.journal = j
	m.mu.Unlock()
}

// SnapshotState captures the mediator's State under the decision
// lock. The optional barrier runs while the lock is still held: the
// persist manager rotates its WAL inside it, so no journal record
// can land between the state capture and the rotation — the captured
// State and the fresh WAL form an exact prefix/suffix partition of
// the access stream. The barrier must not call back into the
// mediator; its error aborts the snapshot.
func (m *Mediator) SnapshotState(barrier func(State) error) (State, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := State{
		Clock:       m.t,
		Schema:      m.cfg.Schema.Name,
		Granularity: m.cfg.Granularity,
		PolicyName:  "none",
		Acct:        m.acct,
	}
	if m.cfg.Policy != nil {
		st.PolicyName = m.cfg.Policy.Name()
		st.Capacity = m.cfg.Policy.Capacity()
		if ss, ok := m.cfg.Policy.(core.StateSnapshotter); ok {
			st.PolicyBlob = ss.SnapshotState()
		}
	}
	if barrier != nil {
		if err := barrier(st); err != nil {
			return State{}, err
		}
	}
	return st, nil
}

// RestoreState adopts a previously captured State: configuration
// guards first (schema, granularity, policy name and capacity — any
// mismatch is an error and the mediator is left untouched), then the
// policy blob, clock, and accounting, and finally the telemetry
// counters are seeded so a registry snapshot still reconciles with
// the restored accounting (core.yield_bytes = Acct.YieldBytes = D_A).
// A nil PolicyBlob restores accounting with a cold cache. Call before
// serving traffic; the decision ledger ring and shadow baselines are
// not part of State and restart empty (they are windowed audit
// views, not accounting).
func (m *Mediator) RestoreState(st State) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st.Schema != m.cfg.Schema.Name {
		return fmt.Errorf("federation: snapshot for schema %q, mediator serves %q", st.Schema, m.cfg.Schema.Name)
	}
	if st.Granularity != m.cfg.Granularity {
		return fmt.Errorf("federation: snapshot at granularity %s, mediator configured for %s", st.Granularity, m.cfg.Granularity)
	}
	name, capacity := "none", int64(0)
	if m.cfg.Policy != nil {
		name = m.cfg.Policy.Name()
		capacity = m.cfg.Policy.Capacity()
	}
	if st.PolicyName != name {
		return fmt.Errorf("federation: snapshot for policy %q, mediator runs %q", st.PolicyName, name)
	}
	if st.Capacity != capacity {
		return fmt.Errorf("federation: snapshot at capacity %d, mediator configured for %d", st.Capacity, capacity)
	}
	if len(st.PolicyBlob) > 0 && m.cfg.Policy != nil {
		ss, ok := m.cfg.Policy.(core.StateSnapshotter)
		if !ok {
			return fmt.Errorf("federation: policy %q cannot restore persisted state", name)
		}
		if err := ss.RestoreState(st.PolicyBlob); err != nil {
			return err
		}
	}
	m.t = st.Clock
	m.acct = st.Acct
	m.queriesMet.Add(st.Acct.Queries)
	m.tel.SeedRestored(name, st.Acct)
	if m.cfg.Policy != nil {
		ev := m.cfg.Policy.Evictions()
		m.tel.RecordEvictions(name, ev)
		m.lastEvictions = ev
	}
	return nil
}

// ReplayJournal reapplies one journal record over the restored state.
// The policy re-decides the access to evolve its internal state, but
// the accounting charges the RECORDED decision — that is what the
// client was actually served before the crash. For deterministic
// policies restored from an exact snapshot the two always agree;
// diverged reports a disagreement (possible only for the randomized
// space-eff-by, whose random stream is not captured) so the persist
// manager can surface it as a metric instead of silently rewriting
// history. Unknown objects (a schema change between runs) and clock
// regressions are errors; the caller should abandon replay and fall
// back rather than apply a gapped suffix.
func (m *Mediator) ReplayJournal(rec JournalRecord) (diverged bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	obj, ok := m.objects[rec.Object]
	if !ok {
		return false, fmt.Errorf("federation: journal references unknown object %s", rec.Object)
	}
	if rec.T < m.t {
		return false, fmt.Errorf("federation: journal record at t=%d behind mediator clock %d", rec.T, m.t)
	}
	if rec.T > m.t {
		// Clock transitions reconstruct the query count: each distinct
		// T was one mediated query.
		dq := rec.T - m.t
		m.t = rec.T
		m.acct.Queries += dq
		m.queriesMet.Add(dq)
	}
	policyName := "none"
	if m.cfg.Policy != nil {
		policyName = m.cfg.Policy.Name()
	}
	switch rec.Kind {
	case JournalAccess:
		d := core.Bypass
		if m.cfg.Policy != nil {
			d = m.cfg.Policy.Access(m.t, obj, rec.Yield)
		}
		diverged = d != rec.Decision
		if err := core.Account(&m.acct, obj, rec.Yield, rec.Decision); err != nil {
			return diverged, err
		}
		m.tel.RecordAccess(policyName, obj, rec.Yield, rec.Decision)
	case JournalForced:
		// The site was down and the cached copy was force-served; the
		// policy was not consulted then and is not consulted now.
		if err := core.Account(&m.acct, obj, rec.Yield, core.Hit); err != nil {
			return false, err
		}
		m.tel.RecordForced(policyName, obj.Site, obj, rec.Yield)
	case JournalFailed:
		m.tel.RecordFailedLeg(obj.Site)
	default:
		return false, fmt.Errorf("federation: unknown journal kind %d", rec.Kind)
	}
	if m.cfg.Policy != nil {
		if ev := m.cfg.Policy.Evictions(); ev > m.lastEvictions {
			m.tel.RecordEvictions(policyName, ev-m.lastEvictions)
			m.lastEvictions = ev
		}
	}
	return diverged, nil
}
