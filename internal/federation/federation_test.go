package federation

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/netcost"
	"bypassyield/internal/sqlparse"
)

const paperQuery = `select p.objID, p.ra, p.dec, p.modelMag_g, s.z as redshift
 from SpecObj s, PhotoObj p
 where p.ObjID = s.ObjID and s.specClass = 2 and s.zConf > 0.95
 and p.modelMag_g > 17.0 and s.z < 0.01`

func bindEDR(t *testing.T, sql string) *engine.Bound {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	b, err := engine.Bind(catalog.EDR(), stmt)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	return b
}

func TestObjectIDs(t *testing.T) {
	if got := TableObjectID("edr", "PhotoObj"); got != "edr/photoobj" {
		t.Fatalf("TableObjectID = %s", got)
	}
	if got := ColumnObjectID("edr", "PhotoObj", "RA"); got != "edr/photoobj.ra" {
		t.Fatalf("ColumnObjectID = %s", got)
	}
}

func TestGranularityParse(t *testing.T) {
	for _, s := range []string{"tables", "Table"} {
		if g, err := ParseGranularity(s); err != nil || g != Tables {
			t.Fatalf("ParseGranularity(%q) = %v, %v", s, g, err)
		}
	}
	if g, err := ParseGranularity("columns"); err != nil || g != Columns {
		t.Fatalf("ParseGranularity(columns) = %v, %v", g, err)
	}
	if _, err := ParseGranularity("rows"); err == nil {
		t.Fatal("unknown granularity should error")
	}
}

func TestObjectsTableGranularity(t *testing.T) {
	s := catalog.EDR()
	objs := Objects(s, Tables, netcost.Uniform())
	if len(objs) != len(s.Tables) {
		t.Fatalf("objects = %d, want %d", len(objs), len(s.Tables))
	}
	po := objs[TableObjectID("edr", "photoobj")]
	if po.Size != s.Table("photoobj").Bytes() {
		t.Fatalf("photoobj size = %d, want %d", po.Size, s.Table("photoobj").Bytes())
	}
	if po.FetchCost != po.Size {
		t.Fatal("uniform network: fetch cost should equal size")
	}
	if po.Site != catalog.SitePhoto {
		t.Fatalf("site = %s", po.Site)
	}
}

func TestObjectsColumnGranularity(t *testing.T) {
	s := catalog.EDR()
	objs := Objects(s, Columns, netcost.Uniform())
	var nCols int
	for i := range s.Tables {
		nCols += len(s.Tables[i].Columns)
	}
	if len(objs) != nCols {
		t.Fatalf("objects = %d, want %d", len(objs), nCols)
	}
	ra := objs[ColumnObjectID("edr", "photoobj", "ra")]
	want := int64(8) * s.Table("photoobj").Rows
	if ra.Size != want {
		t.Fatalf("ra size = %d, want %d", ra.Size, want)
	}
	// Column sizes must partition the table size.
	var sum int64
	for j := range s.Table("photoobj").Columns {
		c := &s.Table("photoobj").Columns[j]
		sum += objs[ColumnObjectID("edr", "photoobj", c.Name)].Size
	}
	if sum != s.Table("photoobj").Bytes() {
		t.Fatalf("column sizes sum to %d, table is %d", sum, s.Table("photoobj").Bytes())
	}
}

func TestObjectsNonUniformCost(t *testing.T) {
	s := catalog.EDR()
	nm := &netcost.Model{PerSite: map[string]float64{catalog.SiteSpec: 3}}
	objs := Objects(s, Tables, nm)
	so := objs[TableObjectID("edr", "specobj")]
	if so.FetchCost != so.Size*3 {
		t.Fatalf("specobj fetch = %d, want 3×%d", so.FetchCost, so.Size)
	}
	po := objs[TableObjectID("edr", "photoobj")]
	if po.FetchCost != po.Size {
		t.Fatal("unlisted site should use the default factor 1")
	}
}

func TestDecomposeTablesPaperExample(t *testing.T) {
	// The paper: "yield is divided into half for each table, as four
	// columns of each table are involved in the query."
	b := bindEDR(t, paperQuery)
	accs := Decompose(b, "edr", 1000, Tables)
	if len(accs) != 2 {
		t.Fatalf("accesses = %d, want 2", len(accs))
	}
	shares := map[core.ObjectID]int64{}
	for _, a := range accs {
		shares[a.Object] = a.Yield
	}
	if shares[TableObjectID("edr", "photoobj")] != 500 || shares[TableObjectID("edr", "specobj")] != 500 {
		t.Fatalf("shares = %v, want 500/500", shares)
	}
}

func TestDecomposeColumnsPaperExample(t *testing.T) {
	// The paper: "Storage of p.objid is 8 bytes, so its yield is
	// 8/46 · Y" with the example query's 46 referenced bytes.
	b := bindEDR(t, paperQuery)
	const y = 46000
	accs := Decompose(b, "edr", y, Columns)
	if len(accs) != 8 {
		t.Fatalf("accesses = %d, want 8", len(accs))
	}
	byID := map[core.ObjectID]int64{}
	var sum int64
	for _, a := range accs {
		byID[a.Object] = a.Yield
		sum += a.Yield
	}
	if sum != y {
		t.Fatalf("yields sum to %d, want %d (conservation)", sum, y)
	}
	if got := byID[ColumnObjectID("edr", "photoobj", "objid")]; got != 8000 {
		t.Fatalf("objid share = %d, want 8000 (8/46 of %d)", got, y)
	}
	if got := byID[ColumnObjectID("edr", "specobj", "specclass")]; got != 2000 {
		t.Fatalf("specclass share = %d, want 2000 (2/46)", got)
	}
}

func TestDecomposeConservation(t *testing.T) {
	// Property: decomposed yields always sum exactly to the query
	// yield, at both granularities, including awkward remainders.
	b := bindEDR(t, paperQuery)
	f := func(yRaw uint32) bool {
		y := int64(yRaw % 1000003)
		for _, g := range []Granularity{Tables, Columns, Views} {
			var sum int64
			for _, a := range Decompose(b, "edr", y, g) {
				if a.Yield < 0 {
					return false
				}
				sum += a.Yield
			}
			if sum != y {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeZeroYield(t *testing.T) {
	b := bindEDR(t, paperQuery)
	accs := Decompose(b, "edr", 0, Columns)
	for _, a := range accs {
		if a.Yield != 0 {
			t.Fatalf("zero yield decomposed to %v", a)
		}
	}
}

func TestDecomposeSingleTable(t *testing.T) {
	b := bindEDR(t, "select ra, dec from photoobj where ra between 100 and 110")
	accs := Decompose(b, "edr", 999, Tables)
	if len(accs) != 1 || accs[0].Object != TableObjectID("edr", "photoobj") || accs[0].Yield != 999 {
		t.Fatalf("accesses = %+v", accs)
	}
}

func newTestMediator(t *testing.T, p core.Policy, g Granularity) *Mediator {
	t.Helper()
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 20000})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Schema: s, Engine: db, Policy: p, Granularity: g})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMediatorNoCachePolicyBypassesAll(t *testing.T) {
	m := newTestMediator(t, nil, Tables)
	rep, err := m.Query("select ra, dec from photoobj where ra < 90")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Decisions {
		if d.Decision != core.Bypass {
			t.Fatalf("decision = %v, want bypass with nil policy", d.Decision)
		}
	}
	acct := m.Accounting()
	if acct.WANBytes() != rep.Result.Bytes {
		t.Fatalf("WAN = %d, want yield %d", acct.WANBytes(), rep.Result.Bytes)
	}
}

func TestMediatorAccountingConservation(t *testing.T) {
	// D_A = D_S + D_C must equal total yield across many queries.
	cap := catalog.EDR().TotalBytes() * 3 / 10
	m := newTestMediator(t, core.NewRateProfile(core.RateProfileConfig{Capacity: cap}), Columns)
	queries := []string{
		"select ra, dec from photoobj where ra between 100 and 140",
		"select ra, dec from photoobj where ra between 140 and 180",
		"select ra, dec, modelmag_r from photoobj where modelmag_r < 20",
		paperQuery,
		"select count(*) from specobj where z < 0.3",
	}
	var totalYield int64
	for round := 0; round < 5; round++ {
		for _, q := range queries {
			rep, err := m.Query(q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			totalYield += rep.Result.Bytes
		}
	}
	acct := m.Accounting()
	if acct.DeliveredBytes() != totalYield {
		t.Fatalf("D_A = %d, want %d", acct.DeliveredBytes(), totalYield)
	}
	if acct.Queries != 25 {
		t.Fatalf("queries = %d, want 25", acct.Queries)
	}
	if m.Clock() != 25 {
		t.Fatalf("clock = %d, want 25", m.Clock())
	}
}

func TestMediatorCachingReducesWAN(t *testing.T) {
	// Repeating the same schema-local queries, a bypass-yield cache
	// must beat no caching.
	cap := catalog.EDR().TotalBytes() / 2
	withCache := newTestMediator(t, core.NewRateProfile(core.RateProfileConfig{Capacity: cap}), Columns)
	noCache := newTestMediator(t, nil, Columns)
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 60; i++ {
		lo := float64(r.Intn(300))
		sql := fmt.Sprintf("select ra, dec from photoobj where ra between %g and %g", lo, lo+30)
		if _, err := withCache.Query(sql); err != nil {
			t.Fatal(err)
		}
		if _, err := noCache.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	w, n := withCache.Accounting().WANBytes(), noCache.Accounting().WANBytes()
	if w >= n {
		t.Fatalf("cache WAN %d not below no-cache %d", w, n)
	}
}

func TestMediatorQueryErrors(t *testing.T) {
	m := newTestMediator(t, nil, Tables)
	if _, err := m.Query("not sql"); err == nil {
		t.Fatal("parse error expected")
	}
	if _, err := m.Query("select ghost from photoobj"); err == nil {
		t.Fatal("bind error expected")
	}
}

func TestMediatorConfigValidation(t *testing.T) {
	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Schema: s}); err == nil {
		t.Fatal("missing engine should error")
	}
	other := catalog.DR1()
	if _, err := New(Config{Schema: other, Engine: db}); err == nil {
		t.Fatal("schema mismatch should error")
	}
}

func TestSubqueries(t *testing.T) {
	b := bindEDR(t, paperQuery)
	subs := Subqueries(b)
	if len(subs) != 2 {
		t.Fatalf("subqueries = %d, want 2", len(subs))
	}
	// First FROM table is specobj: its subquery projects its
	// referenced columns and keeps only its local predicates.
	spec := subs[0]
	if spec.From[0].Name != "specobj" {
		t.Fatalf("first subquery table = %s", spec.From[0].Name)
	}
	if len(spec.Where) != 3 {
		t.Fatalf("specobj subquery conjuncts = %d, want 3 (specclass, zconf, z)", len(spec.Where))
	}
	cols := map[string]bool{}
	for _, item := range spec.Items {
		cols[item.Col.Column] = true
	}
	for _, want := range []string{"objid", "z", "zconf", "specclass"} {
		if !cols[want] {
			t.Fatalf("specobj subquery missing column %s (items %v)", want, spec.Items)
		}
	}
	// Subqueries must re-parse (they go over the wire as SQL).
	for _, sub := range subs {
		if _, err := sqlparse.Parse(sub.String()); err != nil {
			t.Fatalf("subquery %q does not re-parse: %v", sub.String(), err)
		}
	}
	// Executing each subquery against the schema must bind.
	for _, sub := range subs {
		if _, err := engine.Bind(catalog.EDR(), sub); err != nil {
			t.Fatalf("subquery bind: %v", err)
		}
	}
}

func TestViewObjectID(t *testing.T) {
	if got := ViewObjectID("edr", "Galaxy"); got != "edr/view:galaxy" {
		t.Fatalf("ViewObjectID = %s", got)
	}
}

func TestObjectsViewsGranularity(t *testing.T) {
	s := catalog.EDR()
	objs := Objects(s, Views, netcost.Uniform())
	// Tables remain as fallback objects.
	if _, ok := objs[TableObjectID("edr", "photoobj")]; !ok {
		t.Fatal("views universe must include base tables")
	}
	g, ok := objs[ViewObjectID("edr", "galaxy")]
	if !ok {
		t.Fatal("views universe missing galaxy view")
	}
	po := objs[TableObjectID("edr", "photoobj")]
	if g.Size <= 0 || g.Size >= po.Size {
		t.Fatalf("galaxy size %d should be a fraction of photoobj %d", g.Size, po.Size)
	}
	if g.Site != po.Site {
		t.Fatal("view should live at its base table's site")
	}
}

func TestDecomposeViewsMatchesGalaxy(t *testing.T) {
	// A galaxies-only query over view-covered columns decomposes to
	// the galaxy view, not the base table.
	b := bindEDR(t, "select ra, dec, modelmag_r from photoobj where type = 3 and ra between 10 and 20")
	accs := Decompose(b, "edr", 1000, Views)
	if len(accs) != 1 {
		t.Fatalf("accesses = %+v", accs)
	}
	if accs[0].Object != ViewObjectID("edr", "galaxy") {
		t.Fatalf("object = %s, want galaxy view", accs[0].Object)
	}
	if accs[0].Yield != 1000 {
		t.Fatalf("yield = %d", accs[0].Yield)
	}
}

func TestDecomposeViewsPicksSmallestMatch(t *testing.T) {
	// Bright galaxies: both galaxy and brightgalaxy match; the
	// smaller (brightgalaxy) must win.
	b := bindEDR(t, "select ra, modelmag_r from photoobj where type = 3 and modelmag_r between 13 and 18")
	accs := Decompose(b, "edr", 500, Views)
	if accs[0].Object != ViewObjectID("edr", "brightgalaxy") {
		t.Fatalf("object = %s, want brightgalaxy", accs[0].Object)
	}
}

func TestDecomposeViewsFallsBackToTable(t *testing.T) {
	// No type predicate → no photoobj view contains the query region.
	b := bindEDR(t, "select ra, dec from photoobj where ra between 10 and 20")
	accs := Decompose(b, "edr", 100, Views)
	if accs[0].Object != TableObjectID("edr", "photoobj") {
		t.Fatalf("object = %s, want base table", accs[0].Object)
	}
	// Region escaping the view (stars, type=6, but magnitude beyond
	// brightgalaxy) still matches the star view.
	b = bindEDR(t, "select ra from photoobj where type = 6")
	accs = Decompose(b, "edr", 100, Views)
	if accs[0].Object != ViewObjectID("edr", "star") {
		t.Fatalf("object = %s, want star view", accs[0].Object)
	}
}

func TestDecomposeViewsJoin(t *testing.T) {
	// The paper's example join restricted to low redshift: specobj
	// side matches lowzspec, photoobj side falls back to the table
	// (no type predicate).
	b := bindEDR(t, `select p.objid, p.ra, s.z from specobj s, photoobj p
		where p.objid = s.objid and s.z < 0.5`)
	accs := Decompose(b, "edr", 900, Views)
	got := map[core.ObjectID]bool{}
	for _, a := range accs {
		got[a.Object] = true
	}
	if !got[ViewObjectID("edr", "lowzspec")] {
		t.Fatalf("accesses = %v, want lowzspec view", accs)
	}
	if !got[TableObjectID("edr", "photoobj")] {
		t.Fatalf("accesses = %v, want photoobj fallback", accs)
	}
}
