package workload

import (
	"math/rand"
	"testing"

	"bypassyield/internal/catalog"
	"bypassyield/internal/engine"
	"bypassyield/internal/sqlparse"
	"bypassyield/internal/trace"
)

func testStreamProfile(seed int64) Profile {
	return Profile{Name: "stream", Schema: catalog.EDR(), Queries: 1, Seed: seed}
}

// TestStreamDeterministic: same seed ⇒ identical statement sequence;
// different seed ⇒ a different one.
func TestStreamDeterministic(t *testing.T) {
	a, err := NewStream(testStreamProfile(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewStream(testStreamProfile(7))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewStream(testStreamProfile(8))
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for i := 0; i < 200; i++ {
		sa, sb, sc := a.Next(), b.Next(), c.Next()
		if sa != sb {
			t.Fatalf("statement %d diverged under one seed:\n  %q\n  %q", i, sa.SQL, sb.SQL)
		}
		if sa != sc {
			differs = true
		}
	}
	if !differs {
		t.Fatal("200 statements identical across different seeds")
	}
}

// TestStreamStatementsBindable: every streamed statement parses and
// binds against the release schema — the property that lets bysynth
// fire them at a live proxy without a dry run.
func TestStreamStatementsBindable(t *testing.T) {
	s, err := NewStream(testStreamProfile(3))
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]int{}
	for i := 0; i < 500; i++ {
		st := s.Next()
		classes[st.Class]++
		stmt, err := sqlparse.Parse(st.SQL)
		if err != nil {
			t.Fatalf("statement %d does not re-parse: %v\n%s", i, err, st.SQL)
		}
		if _, err := engine.Bind(s.Schema(), stmt); err != nil {
			t.Fatalf("statement %d does not bind: %v\n%s", i, err, st.SQL)
		}
		if st.Class == trace.ClassLog {
			t.Fatalf("stream emitted a log-self query: %s", st.SQL)
		}
	}
	for _, want := range []string{ClassRange, ClassSpatial, ClassIdentity, ClassJoin} {
		if classes[want] == 0 {
			t.Errorf("500 statements produced no %s queries (mix: %v)", want, classes)
		}
	}
}

// TestStreamNoLogQueries: profiles carrying LogQueries still never
// stream them.
func TestStreamNoLogQueries(t *testing.T) {
	p := testStreamProfile(5)
	p.LogQueries = 50
	s, err := NewStream(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if st := s.Next(); st.Class == trace.ClassLog {
			t.Fatalf("streamed a log query: %s", st.SQL)
		}
	}
}

// TestZipfSkew: a larger ZipfS concentrates pool picks on the
// top-ranked entries.
func TestZipfSkew(t *testing.T) {
	top := func(s float64) int {
		g := &gen{p: Profile{ZipfS: s}, rng: rand.New(rand.NewSource(1))}
		n := 0
		for i := 0; i < 5000; i++ {
			if g.zipfPick(10) == 0 {
				n++
			}
		}
		return n
	}
	mild, heavy := top(0.9), top(2.0)
	if heavy <= mild {
		t.Fatalf("zipf s=2.0 picked rank 0 %d times, s=0.9 %d times; want heavier skew", heavy, mild)
	}
	// ZipfS == 0 must keep the historical default (0.9 exponent): the
	// paper profiles' streams cannot change under a zero value.
	if d := top(0) - top(0.9); d != 0 {
		t.Fatalf("ZipfS=0 and ZipfS=0.9 diverge by %d picks; zero must mean the 0.9 default", d)
	}
}

// TestSizeShapeValidation rejects malformed distributions and accepts
// the two supported families.
func TestSizeShapeValidation(t *testing.T) {
	bad := []*SizeShape{
		{Dist: "uniform"},
		{Dist: "pareto", Alpha: 0},
		{Dist: "pareto", Alpha: -1},
		{Dist: "pareto", Alpha: 1.2, Min: -0.5},
		{Dist: "lognormal", Sigma: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("SizeShape %+v validated, want error", s)
		}
	}
	good := []*SizeShape{
		nil,
		{Dist: "lognormal", Mu: 0, Sigma: 1.5},
		{Dist: "pareto", Alpha: 1.3, Min: 0.2},
	}
	for _, s := range good {
		if err := s.Validate(); err != nil {
			t.Errorf("SizeShape %+v rejected: %v", s, err)
		}
	}
}

// TestSizeShapeSampling: draws stay within the clamp and a lognormal
// with a big sigma actually produces a heavy tail.
func TestSizeShapeSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := &SizeShape{Dist: "lognormal", Mu: 0, Sigma: 1.8}
	var over1, total float64
	for i := 0; i < 10000; i++ {
		v := s.sample(rng)
		if v < 0 || v > 8 {
			t.Fatalf("sample %v outside [0, 8]", v)
		}
		if v > 4 {
			over1++
		}
		total++
	}
	if over1 == 0 {
		t.Fatal("lognormal(0, 1.8) never exceeded 4×: tail missing")
	}
	p := &SizeShape{Dist: "pareto", Alpha: 1.1, Min: 0.3, MaxFactor: 16}
	for i := 0; i < 10000; i++ {
		if v := p.sample(rng); v < 0.3-1e-9 || v > 16 {
			t.Fatalf("pareto sample %v outside [0.3, 16]", v)
		}
	}
	var nilShape *SizeShape
	if v := nilShape.sample(rng); v != 1 {
		t.Fatalf("nil shape sample = %v, want 1", v)
	}
}

// TestGenerateUnchangedWithoutShaping: the new knobs at their zero
// values leave Generate's output stream untouched — the paper traces
// (and their calibrations) cannot drift under this PR.
func TestGenerateUnchangedWithoutShaping(t *testing.T) {
	p := Profile{Name: "guard", Schema: catalog.EDR(), Queries: 60, Seed: 99}
	base, err := Generate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Generate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != len(again) {
		t.Fatalf("lengths differ: %d vs %d", len(base), len(again))
	}
	for i := range base {
		if base[i].SQL != again[i].SQL || base[i].Yield != again[i].Yield {
			t.Fatalf("record %d differs across runs", i)
		}
	}

	// Shaping changes the stream (it consumes extra randomness).
	p.SizeShape = &SizeShape{Dist: "pareto", Alpha: 1.2, Min: 0.3}
	shaped, err := Generate(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range base {
		if base[i].SQL != shaped[i].SQL {
			same = false
			break
		}
	}
	if same {
		t.Fatal("SizeShape had no effect on the generated stream")
	}
}
