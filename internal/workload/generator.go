package workload

import (
	"fmt"
	"math"
	"math/rand"

	"bypassyield/internal/catalog"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/sqlparse"
	"bypassyield/internal/trace"
)

// Generate synthesizes a trace for the profile, decomposing yields at
// the given object granularity. The stream of statements is fully
// determined by the profile's seed; only predicate widths respond to
// the sequence-cost calibration, so calibration never changes which
// objects a query touches.
func Generate(p Profile, g federation.Granularity) ([]trace.Record, error) {
	p.fill()
	if p.Schema == nil {
		return nil, fmt.Errorf("workload: profile has no schema")
	}
	if err := p.Schema.Validate(); err != nil {
		return nil, err
	}
	if err := p.SizeShape.Validate(); err != nil {
		return nil, err
	}
	if p.Queries <= 0 {
		return nil, fmt.Errorf("workload: profile has no queries")
	}

	scale := 1.0
	if p.TargetSequenceCost > 0 {
		lo, hi := 1e-4, 256.0
		target := float64(p.TargetSequenceCost)
		for i := 0; i < 48; i++ {
			scale = math.Sqrt(lo * hi) // geometric bisection
			total, err := runStream(p, scale, 0, nil)
			if err != nil {
				return nil, err
			}
			rel := (float64(total) - target) / target
			if math.Abs(rel) <= p.CalibrationTol/2 {
				break
			}
			if rel > 0 {
				hi = scale
			} else {
				lo = scale
			}
		}
	}
	var recs []trace.Record
	if _, err := runStream(p, scale, g, &recs); err != nil {
		return nil, err
	}
	return recs, nil
}

// gen is the per-run generator state.
type gen struct {
	p      Profile
	scale  float64
	rng    *rand.Rand
	schema *catalog.Schema

	pools map[string][]string // hot columns per table, rank order

	raCenter, decCenter float64 // spatial drift walk

	idHistory []int64 // recent identity-query object ids

	campTable string // active campaign's cold table ("" when idle)
	campUntil int    // science-query count at which the campaign ends
	nextCamp  int    // science-query count of the next campaign start
}

// runStream produces the full query stream at the given selectivity
// scale. When out is nil only the total sequence cost is computed
// (calibration mode); otherwise records with decomposed accesses are
// appended.
func runStream(p Profile, scale float64, g federation.Granularity, out *[]trace.Record) (int64, error) {
	gn := &gen{
		p:      p,
		scale:  scale,
		rng:    rand.New(rand.NewSource(p.Seed)),
		schema: p.Schema,
		pools:  make(map[string][]string),
	}
	gn.initPools()
	gn.raCenter = gn.rng.Float64() * 360
	gn.decCenter = gn.rng.Float64()*120 - 60
	gn.nextCamp = p.CampaignEvery/2 + gn.rng.Intn(p.CampaignEvery)

	// Pre-plan log-query positions so they do not consume the science
	// stream's randomness unevenly.
	logAt := make(map[int]bool, p.LogQueries)
	total := p.Queries + p.LogQueries
	for len(logAt) < p.LogQueries {
		logAt[gn.rng.Intn(total)] = true
	}

	var seqCost int64
	seq := int64(0)
	science := 0
	for i := 0; i < total; i++ {
		seq++
		if logAt[i] {
			// Built unconditionally: logRecord draws randomness, and
			// the calibration passes (out == nil) must consume the
			// generator's stream exactly like the final pass.
			rec := gn.logRecord(seq)
			if out != nil {
				*out = append(*out, rec)
			}
			continue
		}
		science++
		if science%p.DriftEvery == 0 {
			gn.drift()
		}
		gn.tickCampaign(science)
		stmt, class := gn.nextStatement()
		b, err := engine.Bind(gn.schema, stmt)
		if err != nil {
			return 0, fmt.Errorf("workload: generated unbindable query %q: %w", stmt.String(), err)
		}
		_, yield, err := engine.EstimateBound(b)
		if err != nil {
			return 0, err
		}
		seqCost += yield
		if out != nil {
			rec := trace.Record{Seq: seq, SQL: stmt.String(), Class: class, Yield: yield}
			for _, a := range federation.Decompose(b, gn.schema.Name, yield, g) {
				rec.Accesses = append(rec.Accesses, trace.Access{Object: string(a.Object), Yield: a.Yield})
			}
			*out = append(*out, rec)
		}
	}
	return seqCost, nil
}

// initPools builds the hot column pool per table: a small, popular
// subset (schema locality). The photometric table gets the full pool
// budget; smaller tables proportionally fewer.
func (g *gen) initPools() {
	for i := range g.schema.Tables {
		t := &g.schema.Tables[i]
		n := g.p.PopularColumns
		if t.Name != "photoobj" {
			n = g.p.PopularColumns / 2
		}
		if n > len(t.Columns) {
			n = len(t.Columns)
		}
		perm := g.rng.Perm(len(t.Columns))
		pool := make([]string, 0, n)
		// Always include the key and the spatial columns when present:
		// real SDSS workloads hammer objid/ra/dec.
		for _, must := range []string{"objid", "ra", "dec"} {
			if t.Column(must) != nil && len(pool) < n {
				pool = append(pool, must)
			}
		}
		for _, idx := range perm {
			if len(pool) >= n {
				break
			}
			name := t.Columns[idx].Name
			if !contains(pool, name) {
				pool = append(pool, name)
			}
		}
		g.pools[t.Name] = pool
	}
}

// drift replaces one non-essential pool member with a fresh column,
// shifting the hot set episodically.
func (g *gen) drift() {
	t := g.schema.Table("photoobj")
	if t == nil {
		return
	}
	pool := g.pools[t.Name]
	if len(pool) <= 3 {
		return
	}
	slot := 3 + g.rng.Intn(len(pool)-3) // keep objid/ra/dec
	for tries := 0; tries < 20; tries++ {
		cand := t.Columns[g.rng.Intn(len(t.Columns))].Name
		if !contains(pool, cand) {
			pool[slot] = cand
			return
		}
	}
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// zipfPick selects an index in [0, n) with probability ∝ 1/(i+1)^s,
// where s is the profile's ZipfS (default 0.9).
func (g *gen) zipfPick(n int) int {
	if n <= 1 {
		return 0
	}
	s := g.p.ZipfS
	if s == 0 {
		s = 0.9
	}
	var total float64
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
	}
	r := g.rng.Float64() * total
	for i := 0; i < n; i++ {
		r -= 1 / math.Pow(float64(i+1), s)
		if r <= 0 {
			return i
		}
	}
	return n - 1
}

// tickCampaign advances the campaign state machine: campaigns start
// on a jittered cadence, pick a cold table, and run for CampaignLen
// science queries.
func (g *gen) tickCampaign(science int) {
	if g.campTable != "" && science >= g.campUntil {
		g.campTable = ""
	}
	if g.campTable == "" && science >= g.nextCamp {
		g.campTable = campaignTables[g.rng.Intn(len(campaignTables))]
		g.campUntil = science + g.p.CampaignLen
		g.nextCamp = science + g.p.CampaignEvery/2 + g.rng.Intn(g.p.CampaignEvery)
	}
}

// campaignQuery builds a burst query against the campaign table:
// moderate-selectivity scans with several columns, heavy enough that
// caching the table pays off for the campaign's duration.
func (g *gen) campaignQuery() *sqlparse.SelectStmt {
	t := g.schema.Table(g.campTable)
	stmt := &sqlparse.SelectStmt{From: []sqlparse.TableRef{{Name: t.Name}}}
	if g.rng.Float64() < 0.25 {
		stmt.Items = []sqlparse.SelectItem{{Star: true}}
	} else {
		stmt.Items = g.pickProjection(t.Name, 3+g.rng.Intn(3))
	}
	c := g.predColumn(t)
	stmt.Where = []sqlparse.Condition{g.rangePred(c, 0.08+0.3*g.rng.Float64())}
	return stmt
}

// nextStatement draws a query class and builds a statement.
func (g *gen) nextStatement() (*sqlparse.SelectStmt, string) {
	if g.campTable != "" && g.rng.Float64() < 0.5 {
		return g.campaignQuery(), ClassCampaign
	}
	r := g.rng.Float64()
	m := g.p.Mix
	switch {
	case r < m.Range:
		return g.rangeScan(), ClassRange
	case r < m.Range+m.Spatial:
		return g.spatialSearch(), ClassSpatial
	case r < m.Range+m.Spatial+m.Identity:
		return g.identityLookup(), ClassIdentity
	case r < m.Range+m.Spatial+m.Identity+m.Join:
		return g.keyJoin(), ClassJoin
	case r < m.Range+m.Spatial+m.Identity+m.Join+m.Aggregate:
		return g.aggregate(), ClassAggregate
	default:
		return g.bulkExtract(), ClassBulk
	}
}

// bulkExtract builds a whole-chunk dump: a wide projection over most
// or all of the photometric table. The selectivity scale stretches
// the covered fraction, letting calibration hit the paper's traffic
// totals while the selective classes keep realistic predicate widths.
func (g *gen) bulkExtract() *sqlparse.SelectStmt {
	t := g.schema.Table("photoobj")
	stmt := &sqlparse.SelectStmt{From: []sqlparse.TableRef{{Name: t.Name}}}
	if g.rng.Float64() < 0.8 {
		stmt.Items = []sqlparse.SelectItem{{Star: true}}
	} else {
		stmt.Items = g.pickProjection(t.Name, 8+g.rng.Intn(5))
	}
	// A broad declination band; width responds to calibration.
	c := t.Column("dec")
	frac := 0.4 + 0.6*g.rng.Float64()
	stmt.Where = []sqlparse.Condition{g.rangePred(c, frac)}
	// Galaxy-catalog extracts: a quarter of the dumps pull one
	// morphological class — the classic published data product, and
	// the traffic a Galaxy/Star materialized view can absorb.
	if g.rng.Float64() < 0.25 {
		class := 3.0
		if g.rng.Float64() < 0.35 {
			class = 6
		}
		stmt.Where = append(stmt.Where, sqlparse.Condition{
			Left: sqlparse.ColRef{Column: "type"}, Op: sqlparse.OpEq, Value: class,
		})
	}
	return stmt
}

// pickProjection selects k pool columns by popularity rank.
func (g *gen) pickProjection(table string, k int) []sqlparse.SelectItem {
	pool := g.pools[table]
	if k > len(pool) {
		k = len(pool)
	}
	seen := map[string]bool{}
	items := make([]sqlparse.SelectItem, 0, k)
	for len(items) < k {
		name := pool[g.zipfPick(len(pool))]
		if seen[name] {
			continue
		}
		seen[name] = true
		items = append(items, sqlparse.SelectItem{Col: sqlparse.ColRef{Column: name}})
	}
	return items
}

// predColumn picks a float pool column suitable for range predicates.
func (g *gen) predColumn(t *catalog.Table) *catalog.Column {
	pool := g.pools[t.Name]
	for tries := 0; tries < 30; tries++ {
		c := t.Column(pool[g.zipfPick(len(pool))])
		if c == nil || c.Key {
			continue
		}
		if c.Type == catalog.Float32 || c.Type == catalog.Float64 {
			return c
		}
	}
	// Fallback: first float column.
	for i := range t.Columns {
		c := &t.Columns[i]
		if !c.Key && (c.Type == catalog.Float32 || c.Type == catalog.Float64) {
			return c
		}
	}
	return &t.Columns[0]
}

// rangePred builds `col between lo and hi` with selectivity
// frac·scale of the column span (clamped to the span). A configured
// SizeShape multiplies the width by a heavy-tailed draw; the nil
// default consumes no randomness, so paper profiles are unchanged.
func (g *gen) rangePred(c *catalog.Column, frac float64) sqlparse.Condition {
	if g.p.SizeShape != nil {
		frac *= g.p.SizeShape.sample(g.rng)
	}
	return g.rangePredRaw(c, frac*g.scale)
}

// rangePredRaw is rangePred without the calibration scale, for query
// classes whose yields must stay small regardless of the traffic
// target (the cold-table probes).
func (g *gen) rangePredRaw(c *catalog.Column, frac float64) sqlparse.Condition {
	span := c.Max - c.Min
	w := span * frac
	if w > span {
		w = span
	}
	lo := c.Min + g.rng.Float64()*(span-w)
	return sqlparse.Condition{
		Left:    sqlparse.ColRef{Column: c.Name},
		Between: true,
		Lo:      round4(lo),
		Hi:      round4(lo + w),
	}
}

// rangeScan builds the workhorse class: a projection of popular
// columns over a predicate range of the photometric (mostly) table.
func (g *gen) rangeScan() *sqlparse.SelectStmt {
	t := g.schema.Table("photoobj")
	switch r := g.rng.Float64(); {
	case r < 0.15:
		t = g.schema.Table("specobj")
	case r < 0.30:
		// Cold-table probes: scattered, low-yield queries over the
		// big survey-metadata tables. Their yields stay small
		// regardless of calibration — cheap to bypass, ruinous for an
		// in-line cache that must load the whole object to answer
		// them.
		return g.coldProbe()
	}
	stmt := &sqlparse.SelectStmt{From: []sqlparse.TableRef{{Name: t.Name}}}
	switch r := g.rng.Float64(); {
	case r < 0.25:
		stmt.Items = []sqlparse.SelectItem{{Star: true}}
	case r < 0.70:
		// Wide cross-match extracts: most of the pool at once.
		stmt.Items = g.pickProjection(t.Name, 7+g.rng.Intn(6))
	default:
		stmt.Items = g.pickProjection(t.Name, 2+g.rng.Intn(5))
	}
	c := g.predColumn(t)
	base := 0.05 + g.rng.ExpFloat64()*0.13
	stmt.Where = append(stmt.Where, g.rangePred(c, base))
	if g.rng.Float64() < 0.3 {
		c2 := g.predColumn(t)
		if c2.Name != c.Name {
			cut := c2.Min + (0.3+0.6*g.rng.Float64())*(c2.Max-c2.Min)
			stmt.Where = append(stmt.Where, sqlparse.Condition{
				Left: sqlparse.ColRef{Column: c2.Name}, Op: sqlparse.OpLt, Value: round4(cut),
			})
		}
	}
	// Astronomers often restrict to a morphological class ("galaxies
	// only"); these predicates are what make the Galaxy/Star
	// materialized views answerable.
	if t.Name == "photoobj" && t.Column("type") != nil && g.rng.Float64() < 0.15 {
		class := 3.0 // galaxies
		if g.rng.Float64() < 0.4 {
			class = 6 // stars
		}
		stmt.Where = append(stmt.Where, sqlparse.Condition{
			Left: sqlparse.ColRef{Column: "type"}, Op: sqlparse.OpEq, Value: class,
		})
	}
	return stmt
}

// coldTables are the probe targets: big, rarely-useful-to-cache
// survey metadata.
var coldTables = []string{"neighbors", "frame", "specline", "mask", "chunk", "platex"}

// campaignTables are the cold tables that host burst campaigns — the
// scientifically meaningful ones; mask/chunk/platex stay pure noise.
var campaignTables = []string{"neighbors", "frame", "specline"}

// coldProbe builds a low-yield query against a cold table.
func (g *gen) coldProbe() *sqlparse.SelectStmt {
	t := g.schema.Table(coldTables[g.rng.Intn(len(coldTables))])
	stmt := &sqlparse.SelectStmt{From: []sqlparse.TableRef{{Name: t.Name}}}
	stmt.Items = g.pickProjection(t.Name, 2+g.rng.Intn(3))
	c := g.predColumn(t)
	stmt.Where = []sqlparse.Condition{g.rangePredRaw(c, 0.002+0.02*g.rng.Float64())}
	return stmt
}

// spatialSearch builds a region query around the drifting sky cursor:
// the paper's "common query iterates over regions of the sky looking
// for objects with specific properties" — same schema, different data.
func (g *gen) spatialSearch() *sqlparse.SelectStmt {
	t := g.schema.Table("photoobj")
	// Random-walk the region center.
	g.raCenter = math.Mod(g.raCenter+g.rng.NormFloat64()*3+360, 360)
	g.decCenter += g.rng.NormFloat64() * 1.5
	if g.decCenter > 80 {
		g.decCenter = 80
	}
	if g.decCenter < -80 {
		g.decCenter = -80
	}
	side := (4 + g.rng.ExpFloat64()*18) * math.Sqrt(g.scale)
	if side > 360 {
		side = 360
	}
	raLo := math.Mod(g.raCenter-side/2+360, 360)
	if raLo+side > 360 {
		raLo = 360 - side
	}
	decSide := side / 2
	decLo := g.decCenter - decSide/2
	if decLo < -90 {
		decLo = -90
	}
	if decLo+decSide > 90 {
		decLo = 90 - decSide
	}
	stmt := &sqlparse.SelectStmt{From: []sqlparse.TableRef{{Name: t.Name}}}
	if g.rng.Float64() < 0.35 {
		stmt.Items = []sqlparse.SelectItem{{Star: true}}
	} else {
		stmt.Items = append([]sqlparse.SelectItem{
			{Col: sqlparse.ColRef{Column: "objid"}},
			{Col: sqlparse.ColRef{Column: "ra"}},
			{Col: sqlparse.ColRef{Column: "dec"}},
		}, g.pickProjection(t.Name, 1+g.rng.Intn(2))...)
	}
	stmt.Where = []sqlparse.Condition{
		{Left: sqlparse.ColRef{Column: "ra"}, Between: true, Lo: round4(raLo), Hi: round4(raLo + side)},
		{Left: sqlparse.ColRef{Column: "dec"}, Between: true, Lo: round4(decLo), Hi: round4(decLo + decSide)},
	}
	// Some region searches want the brightest objects first: a TOP-N
	// ordered by magnitude (the ordering column must be projected).
	if !stmt.Items[0].Star && g.rng.Float64() < 0.18 {
		mag := t.Column("modelmag_r")
		if mag != nil {
			present := false
			for _, it := range stmt.Items {
				if it.Col.Column == mag.Name {
					present = true
					break
				}
			}
			if !present {
				stmt.Items = append(stmt.Items, sqlparse.SelectItem{Col: sqlparse.ColRef{Column: mag.Name}})
			}
			stmt.Top = int64(100 + g.rng.Intn(900))
			stmt.OrderBy = &sqlparse.OrderSpec{Col: sqlparse.ColRef{Column: mag.Name}}
		}
	}
	return stmt
}

// identityLookup builds a point query on the key — the class behind
// Figure 4's containment analysis. Identifiers are mostly unique;
// with small probability a recent one repeats.
func (g *gen) identityLookup() *sqlparse.SelectStmt {
	t := g.schema.Table("photoobj")
	var id int64
	if len(g.idHistory) > 0 && g.rng.Float64() < g.p.IDReuseProb {
		id = g.idHistory[g.rng.Intn(len(g.idHistory))]
	} else {
		id = g.rng.Int63n(t.Rows)
		g.idHistory = append(g.idHistory, id)
		if len(g.idHistory) > 256 {
			g.idHistory = g.idHistory[1:]
		}
	}
	// Identity lookups mostly want the full object detail — columns
	// well outside the hot pool. Their yields are a few hundred bytes,
	// but an in-line cache must load every referenced column (tens of
	// megabytes each) to answer them: the paper's "bringing the large
	// data into cache and computing a small result could waste an
	// arbitrarily large amount of network bandwidth".
	var items []sqlparse.SelectItem
	switch r := g.rng.Float64(); {
	case r < 0.05:
		items = []sqlparse.SelectItem{{Star: true}}
	case r < 0.40:
		items = g.pickProjection(t.Name, 4+g.rng.Intn(4))
	default:
		items = g.randomProjection(t, 14+g.rng.Intn(12))
	}
	return &sqlparse.SelectStmt{
		Items: items,
		From:  []sqlparse.TableRef{{Name: t.Name}},
		Where: []sqlparse.Condition{{
			Left: sqlparse.ColRef{Column: "objid"}, Op: sqlparse.OpEq, Value: float64(id),
		}},
	}
}

// randomProjection selects k columns uniformly from the whole table
// (not just the hot pool).
func (g *gen) randomProjection(t *catalog.Table, k int) []sqlparse.SelectItem {
	if k > len(t.Columns) {
		k = len(t.Columns)
	}
	perm := g.rng.Perm(len(t.Columns))
	items := make([]sqlparse.SelectItem, 0, k)
	for _, idx := range perm[:k] {
		items = append(items, sqlparse.SelectItem{Col: sqlparse.ColRef{Column: t.Columns[idx].Name}})
	}
	return items
}

// keyJoin builds a federation join: mostly the paper's example
// template (photoobj ⋈ specobj with spectral and photometric
// filters), and sometimes a neighbors cross-match — the defining
// SkyQuery workload, whose fan-out makes results larger than either
// input's referenced slice.
func (g *gen) keyJoin() *sqlparse.SelectStmt {
	if g.rng.Float64() < 0.4 {
		return g.crossMatch()
	}
	return g.specJoin()
}

// crossMatch builds photoobj ⋈ neighbors: every photometric object
// pairs with its ~2.5 neighbors, so selective photometric cuts still
// produce bulky pair lists.
func (g *gen) crossMatch() *sqlparse.SelectStmt {
	stmt := &sqlparse.SelectStmt{
		From: []sqlparse.TableRef{{Name: "photoobj", Alias: "p"}, {Name: "neighbors", Alias: "n"}},
		Where: []sqlparse.Condition{
			{Left: sqlparse.ColRef{Table: "p", Column: "objid"}, Op: sqlparse.OpEq,
				RightCol: &sqlparse.ColRef{Table: "n", Column: "objid"}},
		},
	}
	if g.rng.Float64() < 0.3 {
		stmt.Items = []sqlparse.SelectItem{{Star: true}}
	} else {
		stmt.Items = []sqlparse.SelectItem{
			{Col: sqlparse.ColRef{Table: "p", Column: "objid"}},
			{Col: sqlparse.ColRef{Table: "p", Column: "ra"}},
			{Col: sqlparse.ColRef{Table: "p", Column: "dec"}},
			{Col: sqlparse.ColRef{Table: "n", Column: "neighborobjid"}},
			{Col: sqlparse.ColRef{Table: "n", Column: "distance"}},
		}
		for _, it := range g.pickProjection("photoobj", 1+g.rng.Intn(3)) {
			stmt.Items = append(stmt.Items, sqlparse.SelectItem{
				Col: sqlparse.ColRef{Table: "p", Column: it.Col.Column},
			})
		}
	}
	t := g.schema.Table("photoobj")
	c := g.predColumn(t)
	cond := g.rangePred(c, 0.1+g.rng.ExpFloat64()*0.2)
	cond.Left.Table = "p"
	stmt.Where = append(stmt.Where, cond)
	return stmt
}

// specJoin is the paper's example template.
func (g *gen) specJoin() *sqlparse.SelectStmt {
	mag := g.pools["photoobj"][g.zipfPick(len(g.pools["photoobj"]))]
	if g.schema.Table("photoobj").Column(mag).Key {
		mag = "modelmag_g"
	}
	zMax := round4((0.3 + 2.7*g.rng.Float64()) * math.Min(g.scale, 2))
	stmt := &sqlparse.SelectStmt{
		Items: []sqlparse.SelectItem{
			{Col: sqlparse.ColRef{Table: "p", Column: "objid"}},
			{Col: sqlparse.ColRef{Table: "p", Column: "ra"}},
			{Col: sqlparse.ColRef{Table: "p", Column: "dec"}},
			{Col: sqlparse.ColRef{Table: "p", Column: mag}},
			{Col: sqlparse.ColRef{Table: "s", Column: "z"}, Alias: "redshift"},
		},
		From: []sqlparse.TableRef{{Name: "specobj", Alias: "s"}, {Name: "photoobj", Alias: "p"}},
		Where: []sqlparse.Condition{
			{Left: sqlparse.ColRef{Table: "p", Column: "objid"}, Op: sqlparse.OpEq,
				RightCol: &sqlparse.ColRef{Table: "s", Column: "objid"}},
			{Left: sqlparse.ColRef{Table: "s", Column: "specclass"}, Op: sqlparse.OpEq,
				Value: float64(g.rng.Intn(7))},
			{Left: sqlparse.ColRef{Table: "s", Column: "zconf"}, Op: sqlparse.OpGt,
				Value: round4(0.35 + 0.6*g.rng.Float64())},
			{Left: sqlparse.ColRef{Table: "s", Column: "z"}, Op: sqlparse.OpLt, Value: zMax},
		},
	}
	if mag != "objid" && mag != "ra" && mag != "dec" {
		stmt.Where = append(stmt.Where, sqlparse.Condition{
			Left: sqlparse.ColRef{Table: "p", Column: mag}, Op: sqlparse.OpGt,
			Value: round4(14 + 10*g.rng.Float64()),
		})
	}
	return stmt
}

// aggregate builds a count/avg over a filtered range, sometimes
// grouped by a low-cardinality attribute (the SDSS "census" pattern:
// counts per object type, per spectral class, ...).
func (g *gen) aggregate() *sqlparse.SelectStmt {
	t := g.schema.Table("photoobj")
	if g.rng.Float64() < 0.4 {
		t = g.schema.Table("specobj")
	}
	c := g.predColumn(t)
	stmt := &sqlparse.SelectStmt{From: []sqlparse.TableRef{{Name: t.Name}}}
	switch r := g.rng.Float64(); {
	case r < 0.4:
		if gc := g.groupColumn(t); gc != nil {
			stmt.Items = []sqlparse.SelectItem{
				{Col: sqlparse.ColRef{Column: gc.Name}},
				{Agg: sqlparse.AggCount, Star: true},
				{Agg: sqlparse.AggAvg, Col: sqlparse.ColRef{Column: g.predColumn(t).Name}},
			}
			stmt.GroupBy = &sqlparse.ColRef{Column: gc.Name}
			break
		}
		fallthrough
	case r < 0.7:
		stmt.Items = []sqlparse.SelectItem{{Agg: sqlparse.AggCount, Star: true}}
	default:
		ac := g.predColumn(t)
		stmt.Items = []sqlparse.SelectItem{
			{Agg: sqlparse.AggCount, Star: true},
			{Agg: sqlparse.AggAvg, Col: sqlparse.ColRef{Column: ac.Name}},
		}
	}
	stmt.Where = []sqlparse.Condition{g.rangePred(c, 0.1+0.4*g.rng.Float64())}
	return stmt
}

// groupColumn picks a low-cardinality integer attribute suitable for
// GROUP BY, or nil if the table has none.
func (g *gen) groupColumn(t *catalog.Table) *catalog.Column {
	var cands []*catalog.Column
	for i := range t.Columns {
		c := &t.Columns[i]
		if c.Key {
			continue
		}
		isInt := c.Type == catalog.Int16 || c.Type == catalog.Int32
		if isInt && c.Max-c.Min <= 100 {
			cands = append(cands, c)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[g.rng.Intn(len(cands))]
}

// logRecord builds a log-self query record: the SDSS logs were stored
// in the database and queried by curious users; the paper removes
// these in preprocessing. They reference a pseudo-object outside the
// release schema.
func (g *gen) logRecord(seq int64) trace.Record {
	y := int64(2048 + g.rng.Intn(30000))
	return trace.Record{
		Seq:   seq,
		SQL:   fmt.Sprintf("select top %d statement from sqllog where error = 0", 50+g.rng.Intn(200)),
		Class: trace.ClassLog,
		Yield: y,
		Accesses: []trace.Access{
			{Object: g.schema.Name + "/sqllog", Yield: y},
		},
	}
}

// round4 trims predicate constants to 4 decimals so statements stay
// readable and round-trip exactly through the SQL grammar.
func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }
