package workload

import (
	"math"
	"testing"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/trace"
)

// TestMediatorTraceReplay drives the live mediator with a synthesized
// workload — the paper's methodology of re-executing traces against
// the server — and checks that executed yields track the trace's
// analytic yields and that accounting stays conserved end to end.
func TestMediatorTraceReplay(t *testing.T) {
	p := ScaledProfile(EDRProfile(), 200)
	recs, err := Generate(p, federation.Columns)
	if err != nil {
		t.Fatal(err)
	}
	recs = trace.Preprocess(recs)

	s := catalog.EDR()
	db, err := engine.Open(s, engine.Config{Seed: 1, SampleEvery: 2000})
	if err != nil {
		t.Fatal(err)
	}
	capacity := s.TotalBytes() * 4 / 10
	med, err := federation.New(federation.Config{
		Schema:      s,
		Engine:      db,
		Policy:      core.NewRateProfile(core.RateProfileConfig{Capacity: capacity}),
		Granularity: federation.Columns,
	})
	if err != nil {
		t.Fatal(err)
	}

	var analytic, executed int64
	replayed := 0
	for _, rec := range recs {
		rep, err := med.Query(rec.SQL)
		if err != nil {
			t.Fatalf("replay %q: %v", rec.SQL, err)
		}
		analytic += rec.Yield
		executed += rep.Result.Bytes
		replayed++
		// Per-query decision yields must sum to the executed yield.
		var sum int64
		for _, d := range rep.Decisions {
			sum += d.Yield
		}
		if len(rep.Decisions) > 0 && sum != rep.Result.Bytes {
			t.Fatalf("%q: decision yields %d != executed %d", rec.SQL, sum, rep.Result.Bytes)
		}
	}
	if replayed < 100 {
		t.Fatalf("replayed only %d queries", replayed)
	}
	// Sampled execution should track the analytic totals within ~20%.
	rel := math.Abs(float64(executed)-float64(analytic)) / float64(analytic)
	if rel > 0.2 {
		t.Fatalf("executed %d vs analytic %d (%.0f%% apart)", executed, analytic, rel*100)
	}
	// End-to-end conservation.
	acct := med.Accounting()
	if acct.DeliveredBytes() != executed {
		t.Fatalf("delivered %d != executed %d", acct.DeliveredBytes(), executed)
	}
	if acct.WANBytes() >= executed {
		t.Fatal("cache produced no savings over the replay")
	}
}
