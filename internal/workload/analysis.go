package workload

import (
	"sort"
	"strings"

	"bypassyield/internal/sqlparse"
	"bypassyield/internal/trace"
)

// This file implements the workload characterization behind the
// paper's Section 6.1: query containment (Figure 4) and schema
// locality over columns and tables (Figures 5–6).

// LocalityPoint is one scatter point: query number vs. referenced
// item (column or table), exactly the axes of Figures 5 and 6.
type LocalityPoint struct {
	// Query is the query's sequence number.
	Query int64
	// Item is the referenced column ("photoobj.ra") or table
	// ("photoobj").
	Item string
}

// ColumnLocality extracts (query, column) reference points from a
// column-granularity trace. Accesses with zero yield still count as
// references (the query touched the column).
func ColumnLocality(recs []trace.Record) []LocalityPoint {
	var pts []LocalityPoint
	for _, r := range recs {
		for _, a := range r.Accesses {
			item := itemOf(a.Object)
			if !strings.Contains(item, ".") {
				continue // table-granularity access
			}
			pts = append(pts, LocalityPoint{Query: r.Seq, Item: item})
		}
	}
	return pts
}

// TableLocality extracts (query, table) reference points from a trace
// of either granularity (column objects collapse to their table).
func TableLocality(recs []trace.Record) []LocalityPoint {
	var pts []LocalityPoint
	for _, r := range recs {
		seen := map[string]bool{}
		for _, a := range r.Accesses {
			item := itemOf(a.Object)
			if i := strings.IndexByte(item, '.'); i >= 0 {
				item = item[:i]
			}
			if seen[item] {
				continue
			}
			seen[item] = true
			pts = append(pts, LocalityPoint{Query: r.Seq, Item: item})
		}
	}
	return pts
}

// itemOf strips the release prefix from an object id.
func itemOf(object string) string {
	if i := strings.IndexByte(object, '/'); i >= 0 {
		return object[i+1:]
	}
	return object
}

// LocalitySummary quantifies schema locality: how few items cover
// most references.
type LocalitySummary struct {
	// Items is the number of distinct referenced items.
	Items int
	// References is the total reference count.
	References int
	// Top90 is the smallest number of items covering ≥ 90% of
	// references; Top90Frac is that count over Items. Strong schema
	// locality means a small fraction.
	Top90     int
	Top90Frac float64
}

// SummarizeLocality computes coverage statistics over scatter points.
func SummarizeLocality(pts []LocalityPoint) LocalitySummary {
	counts := map[string]int{}
	for _, p := range pts {
		counts[p.Item]++
	}
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	sum := 0
	for _, f := range freqs {
		sum += f
	}
	s := LocalitySummary{Items: len(counts), References: sum}
	if sum == 0 {
		return s
	}
	cover, need := 0, int(0.9*float64(sum)+0.999)
	for i, f := range freqs {
		cover += f
		if cover >= need {
			s.Top90 = i + 1
			break
		}
	}
	s.Top90Frac = float64(s.Top90) / float64(s.Items)
	return s
}

// ContainmentPoint is one Figure-4 scatter point: an identity query
// and the object identifier it asked for.
type ContainmentPoint struct {
	// Query is the query's sequence number.
	Query int64
	// ObjectID is the celestial identifier requested.
	ObjectID int64
}

// ContainmentReport summarizes identifier reuse among identity
// queries — the paper's proxy for query containment.
type ContainmentReport struct {
	// Points are the scatter points in query order (Figure 4 shows a
	// 50-query window of these).
	Points []ContainmentPoint
	// Distinct is the number of distinct identifiers.
	Distinct int
	// Reused is the number of queries whose identifier appeared
	// before.
	Reused int
}

// ReuseRate is Reused over total identity queries.
func (r ContainmentReport) ReuseRate() float64 {
	if len(r.Points) == 0 {
		return 0
	}
	return float64(r.Reused) / float64(len(r.Points))
}

// QueryContainment parses identity-class queries and reports
// identifier reuse. Queries that fail to parse or carry no key
// equality are skipped.
func QueryContainment(recs []trace.Record) ContainmentReport {
	var rep ContainmentReport
	seen := map[int64]bool{}
	for _, r := range recs {
		if r.Class != ClassIdentity {
			continue
		}
		stmt, err := sqlparse.Parse(r.SQL)
		if err != nil {
			continue
		}
		id, ok := keyEquality(stmt)
		if !ok {
			continue
		}
		rep.Points = append(rep.Points, ContainmentPoint{Query: r.Seq, ObjectID: id})
		if seen[id] {
			rep.Reused++
		} else {
			seen[id] = true
		}
	}
	rep.Distinct = len(seen)
	return rep
}

// keyEquality extracts the identifier from an `objid = N` conjunct.
func keyEquality(stmt *sqlparse.SelectStmt) (int64, bool) {
	for _, c := range stmt.Where {
		if c.Between || c.RightCol != nil || c.Op != sqlparse.OpEq {
			continue
		}
		if strings.HasSuffix(c.Left.Column, "objid") {
			return int64(c.Value), true
		}
	}
	return 0, false
}
