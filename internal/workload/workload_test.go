package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/sqlparse"
	"bypassyield/internal/trace"
)

// testProfile is a fast, calibrated profile over EDR.
func testProfile() Profile {
	p := EDRProfile()
	return ScaledProfile(p, 20) // ≈1383 queries, ≈60.8 GB
}

func TestGenerateBasics(t *testing.T) {
	p := testProfile()
	recs, err := Generate(p, federation.Columns)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != p.Queries+p.LogQueries {
		t.Fatalf("records = %d, want %d", len(recs), p.Queries+p.LogQueries)
	}
	if err := trace.Validate(recs); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateCalibratedSequenceCost(t *testing.T) {
	p := testProfile()
	recs, err := Generate(p, federation.Tables)
	if err != nil {
		t.Fatal(err)
	}
	science := trace.Preprocess(recs)
	got := trace.SequenceCost(science)
	rel := math.Abs(float64(got)-float64(p.TargetSequenceCost)) / float64(p.TargetSequenceCost)
	if rel > 0.05 {
		t.Fatalf("sequence cost = %d, target %d (%.1f%% off)", got, p.TargetSequenceCost, rel*100)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := testProfile()
	a, err := Generate(p, federation.Columns)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, federation.Columns)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same profile must generate identical traces")
	}
}

func TestGenerateSQLParsesAndBinds(t *testing.T) {
	p := testProfile()
	recs, err := Generate(p, federation.Columns)
	if err != nil {
		t.Fatal(err)
	}
	s := catalog.EDR()
	for _, r := range trace.Preprocess(recs) {
		stmt, err := sqlparse.Parse(r.SQL)
		if err != nil {
			t.Fatalf("generated SQL does not parse: %q: %v", r.SQL, err)
		}
		b, err := engine.Bind(s, stmt)
		if err != nil {
			t.Fatalf("generated SQL does not bind: %q: %v", r.SQL, err)
		}
		// The recorded yield must equal the analytic estimate.
		_, yield, err := engine.EstimateBound(b)
		if err != nil {
			t.Fatal(err)
		}
		if yield != r.Yield {
			t.Fatalf("recorded yield %d != estimate %d for %q", r.Yield, yield, r.SQL)
		}
	}
}

func TestGenerateClassMix(t *testing.T) {
	p := testProfile()
	recs, err := Generate(p, federation.Tables)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, r := range recs {
		counts[r.Class]++
	}
	if counts[trace.ClassLog] != p.LogQueries {
		t.Fatalf("log queries = %d, want %d", counts[trace.ClassLog], p.LogQueries)
	}
	if counts[ClassCampaign] == 0 {
		t.Fatal("expected campaign-burst queries in the trace")
	}
	// Class proportions hold among the non-campaign science queries.
	total := float64(p.Queries - counts[ClassCampaign])
	for class, wantFrac := range map[string]float64{
		ClassRange: 0.32, ClassSpatial: 0.17, ClassIdentity: 0.10,
		ClassJoin: 0.08, ClassAggregate: 0.05, ClassBulk: 0.28,
	} {
		got := float64(counts[class]) / total
		if math.Abs(got-wantFrac) > 0.05 {
			t.Fatalf("class %s fraction = %.3f, want ≈ %.2f", class, got, wantFrac)
		}
	}
}

func TestGenerateAccessObjectsExist(t *testing.T) {
	p := testProfile()
	for _, g := range []federation.Granularity{federation.Tables, federation.Columns} {
		recs, err := Generate(p, g)
		if err != nil {
			t.Fatal(err)
		}
		objs := federation.Objects(catalog.EDR(), g, nil)
		for _, r := range trace.Preprocess(recs) {
			for _, a := range r.Accesses {
				if _, ok := objs[core.ObjectID(a.Object)]; !ok {
					t.Fatalf("access references unknown object %s (granularity %s)", a.Object, g)
				}
			}
		}
	}
}

func TestColumnLocalityIsStrong(t *testing.T) {
	// Figures 5–6: references concentrate on a small fraction of
	// columns, with long-lasting reuse.
	p := testProfile()
	recs, err := Generate(p, federation.Columns)
	if err != nil {
		t.Fatal(err)
	}
	pts := ColumnLocality(trace.Preprocess(recs))
	sum := SummarizeLocality(pts)
	if sum.Items < 20 {
		t.Fatalf("too few distinct columns referenced: %d", sum.Items)
	}
	if sum.Top90Frac > 0.5 {
		t.Fatalf("90%% of references spread over %.0f%% of columns; want concentrated (≤ 50%%)",
			sum.Top90Frac*100)
	}
}

func TestTableLocality(t *testing.T) {
	p := testProfile()
	recs, err := Generate(p, federation.Tables)
	if err != nil {
		t.Fatal(err)
	}
	pts := TableLocality(trace.Preprocess(recs))
	sum := SummarizeLocality(pts)
	// The workload concentrates on photoobj/specobj plus the three
	// campaign tables, out of 9.
	if sum.Top90 > 5 {
		t.Fatalf("90%% of table references need %d tables; want ≤ 5", sum.Top90)
	}
}

func TestQueryContainmentIsLow(t *testing.T) {
	// Figure 4: few object identifiers are reused — query caching is
	// unattractive.
	p := testProfile()
	recs, err := Generate(p, federation.Tables)
	if err != nil {
		t.Fatal(err)
	}
	rep := QueryContainment(trace.Preprocess(recs))
	if len(rep.Points) < 50 {
		t.Fatalf("too few identity queries analyzed: %d", len(rep.Points))
	}
	if rep.ReuseRate() > 0.15 {
		t.Fatalf("identifier reuse rate = %.2f, want low (≤ 0.15)", rep.ReuseRate())
	}
	if rep.Distinct < len(rep.Points)*8/10 {
		t.Fatalf("distinct ids = %d of %d queries; want mostly unique", rep.Distinct, len(rep.Points))
	}
}

func TestScaledProfile(t *testing.T) {
	p := EDRProfile()
	s := ScaledProfile(p, 10)
	if s.Queries != p.Queries/10 || s.TargetSequenceCost != p.TargetSequenceCost/10 {
		t.Fatalf("scaled = %+v", s)
	}
	if ScaledProfile(p, 1).Queries != p.Queries {
		t.Fatal("factor 1 should be identity")
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Profile{Queries: 10}, federation.Tables); err == nil {
		t.Fatal("missing schema should error")
	}
	if _, err := Generate(Profile{Schema: catalog.EDR()}, federation.Tables); err == nil {
		t.Fatal("zero queries should error")
	}
}

func TestMixNormalization(t *testing.T) {
	m := Mix{Range: 2, Spatial: 2}.normalized()
	if m.Range != 0.5 || m.Spatial != 0.5 {
		t.Fatalf("normalized = %+v", m)
	}
	z := Mix{}.normalized()
	if z.Range != 1 {
		t.Fatalf("zero mix should default to all-range, got %+v", z)
	}
}

func TestSummarizeLocalityEmpty(t *testing.T) {
	s := SummarizeLocality(nil)
	if s.Items != 0 || s.Top90 != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestGenerateViewsGranularity(t *testing.T) {
	// End-to-end: traces decompose at Views granularity and every
	// access resolves in the Views object universe.
	p := testProfile()
	recs, err := Generate(p, federation.Views)
	if err != nil {
		t.Fatal(err)
	}
	objs := federation.Objects(catalog.EDR(), federation.Views, nil)
	views := 0
	for _, r := range trace.Preprocess(recs) {
		for _, a := range r.Accesses {
			if _, ok := objs[core.ObjectID(a.Object)]; !ok {
				t.Fatalf("unknown object %s", a.Object)
			}
			if strings.Contains(a.Object, "view:") {
				views++
			}
		}
	}
	if views == 0 {
		t.Fatal("no view accesses generated; the workload should produce view-matching queries")
	}
}
