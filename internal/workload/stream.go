package workload

import (
	"fmt"
	"math/rand"

	"bypassyield/internal/catalog"
)

// Statement is one generated query ready to send over the wire.
type Statement struct {
	// SQL is the statement text (round-trips through the federation's
	// SQL grammar).
	SQL string
	// Class tags the query class (ClassRange, ClassSpatial, ...).
	Class string
}

// Stream is an unbounded, deterministic statement source over a
// profile: the same science-query generator that Generate runs, but
// demand-driven and without yield decomposition or calibration, so a
// live load harness (bysynth) can draw statements at wire speed
// instead of materializing a whole trace up front.
//
// Streams never emit log-self queries (they reference a pseudo-table
// outside the release schema, so a live proxy cannot bind them) and
// run at selectivity scale 1; drift and campaign dynamics advance
// exactly as in Generate.
type Stream struct {
	g       *gen
	science int
}

// NewStream builds a statement stream for the profile. The profile's
// Seed fully determines the statement sequence.
func NewStream(p Profile) (*Stream, error) {
	p.fill()
	if p.Schema == nil {
		return nil, fmt.Errorf("workload: profile has no schema")
	}
	if err := p.Schema.Validate(); err != nil {
		return nil, err
	}
	if err := p.SizeShape.Validate(); err != nil {
		return nil, err
	}
	gn := &gen{
		p:      p,
		scale:  1,
		rng:    rand.New(rand.NewSource(p.Seed)),
		schema: p.Schema,
		pools:  make(map[string][]string),
	}
	gn.initPools()
	gn.raCenter = gn.rng.Float64() * 360
	gn.decCenter = gn.rng.Float64()*120 - 60
	gn.nextCamp = p.CampaignEvery/2 + gn.rng.Intn(p.CampaignEvery)
	return &Stream{g: gn}, nil
}

// Schema returns the release the stream's statements run against.
func (s *Stream) Schema() *catalog.Schema { return s.g.schema }

// Next generates the next statement.
func (s *Stream) Next() Statement {
	s.science++
	if s.science%s.g.p.DriftEvery == 0 {
		s.g.drift()
	}
	s.g.tickCampaign(s.science)
	stmt, class := s.g.nextStatement()
	return Statement{SQL: stmt.String(), Class: class}
}
