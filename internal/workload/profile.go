// Package workload synthesizes SDSS-like query traces matching the
// statistical properties the paper reports for its EDR and DR1 logs,
// and provides the analyzers behind the paper's workload
// characterization (query containment, schema locality).
//
// The real SDSS SkyQuery logs are not redistributable; the generator
// reproduces what the cache algorithms actually see — the per-query
// (object, yield) stream — with the documented properties:
//
//   - query counts and total sequence cost matched to the paper
//     (27,663 queries ≈ 1216.94 GB for EDR; 24,567 ≈ 1980.4 GB for
//     DR1), calibrated by binary search on a selectivity scale;
//   - a query-class mix of range scans, spatial region searches,
//     identity lookups, key joins, and aggregates, as the paper
//     describes ("range queries, spatial searches, identity queries,
//     and aggregate queries"), plus a few log-self queries that
//     preprocessing removes;
//   - schema locality: a small popular subset of columns/tables
//     dominates, with slow episodic drift (Figures 5–6);
//   - essentially no query containment: identity lookups rarely
//     repeat an object identifier (Figure 4).
//
// Generation is deterministic for a given profile.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"bypassyield/internal/catalog"
)

// Class tags a query class in generated traces.
const (
	ClassRange     = "range"
	ClassSpatial   = "spatial"
	ClassIdentity  = "identity"
	ClassJoin      = "join"
	ClassAggregate = "aggregate"
	// ClassBulk tags whole-chunk extracts: wide projections over most
	// or all of a table. The paper's traffic figures (≈1200 GB through
	// a ≈700 MB database in ≈27k queries) imply such dumps carry most
	// of the bytes; they are what makes "move the program to the data"
	// economics interesting.
	ClassBulk = "bulk"
	// ClassCampaign tags burst traffic against a temporarily hot cold
	// table — a research group batch-processing, say, the neighbors
	// table for a stretch of the trace. Campaigns are what make cache
	// contents turn over (the paper's fetch costs are many multiples
	// of the database size, so its cache churned continually) and are
	// the bursts its episode heuristics exist for.
	ClassCampaign = "campaign"
)

// Mix sets the class proportions of a profile; they need not sum to 1
// (they are normalized).
type Mix struct {
	Range     float64 `json:"range,omitempty"`
	Spatial   float64 `json:"spatial,omitempty"`
	Identity  float64 `json:"identity,omitempty"`
	Join      float64 `json:"join,omitempty"`
	Aggregate float64 `json:"aggregate,omitempty"`
	Bulk      float64 `json:"bulk,omitempty"`
}

func (m Mix) normalized() Mix {
	s := m.Range + m.Spatial + m.Identity + m.Join + m.Aggregate + m.Bulk
	if s <= 0 {
		return Mix{Range: 1}
	}
	return Mix{m.Range / s, m.Spatial / s, m.Identity / s, m.Join / s, m.Aggregate / s, m.Bulk / s}
}

// Profile parameterizes trace generation.
type Profile struct {
	// Name labels the trace ("edr", "dr1").
	Name string
	// Schema is the release the queries run against.
	Schema *catalog.Schema
	// Queries is the number of science queries (log-self queries are
	// added on top and later removed by preprocessing).
	Queries int
	// TargetSequenceCost is the desired total yield in bytes; the
	// generator calibrates selectivities to land within
	// CalibrationTol of it. Zero disables calibration.
	TargetSequenceCost int64
	// CalibrationTol is the acceptable relative error (default 0.02).
	CalibrationTol float64
	// Seed drives all randomness.
	Seed int64
	// Mix sets the query-class proportions; the zero value selects
	// the default mix.
	Mix Mix
	// LogQueries is the number of log-self queries interleaved
	// (default 0).
	LogQueries int
	// PopularColumns bounds the hot column pool per table (default 12
	// for the photometric table, scaled for others).
	PopularColumns int
	// DriftEvery shifts one pool member every N queries (default
	// 2500), producing the episodic locality of Figures 5–6.
	DriftEvery int
	// IDReuseProb is the probability an identity query repeats a
	// recently seen object identifier (default 0.05 — low, so query
	// caching stays unattractive as in Figure 4).
	IDReuseProb float64
	// CampaignEvery is the mean gap, in science queries, between
	// campaign starts (default 1100); CampaignLen is a campaign's
	// duration (default 500). During a campaign roughly half the
	// queries hit the campaign's cold table with substantial yields.
	CampaignEvery int
	CampaignLen   int
	// ZipfS is the exponent of the Zipf popularity ranking used when
	// drawing from the hot column pools (default 0.9, the paper-era
	// mix). Larger values skew references harder onto the top-ranked
	// objects — the heavy-tailed popularity the ESnet in-network-cache
	// access studies report.
	ZipfS float64
	// SizeShape, when set, multiplies every calibrated range-predicate
	// width by a heavy-tailed draw, shaping the yield-size distribution
	// (lognormal or Pareto) beyond what the class mix alone produces.
	// Nil leaves the generator byte-for-byte identical to the paper
	// profiles: no extra randomness is consumed.
	SizeShape *SizeShape
}

// SizeShape is a heavy-tailed multiplier distribution for predicate
// widths: "lognormal" (parameters Mu, Sigma of the underlying normal)
// or "pareto" (shape Alpha ≥ tail exponent, scale Min > 0). Draws are
// clamped to [0, MaxFactor] (default 8) so a single tail sample cannot
// blow a query up to the full table.
type SizeShape struct {
	Dist      string  `json:"dist"`
	Mu        float64 `json:"mu,omitempty"`
	Sigma     float64 `json:"sigma,omitempty"`
	Alpha     float64 `json:"alpha,omitempty"`
	Min       float64 `json:"min,omitempty"`
	MaxFactor float64 `json:"max_factor,omitempty"`
}

// Validate rejects unusable shapes.
func (s *SizeShape) Validate() error {
	if s == nil {
		return nil
	}
	switch s.Dist {
	case "lognormal":
		if s.Sigma < 0 {
			return fmt.Errorf("workload: lognormal sigma %v < 0", s.Sigma)
		}
	case "pareto":
		if s.Alpha <= 0 {
			return fmt.Errorf("workload: pareto alpha %v ≤ 0", s.Alpha)
		}
		if s.Min < 0 {
			return fmt.Errorf("workload: pareto min %v < 0", s.Min)
		}
	default:
		return fmt.Errorf("workload: unknown size distribution %q (have lognormal, pareto)", s.Dist)
	}
	return nil
}

// sample draws one width multiplier.
func (s *SizeShape) sample(rng *rand.Rand) float64 {
	if s == nil {
		return 1
	}
	maxf := s.MaxFactor
	if maxf <= 0 {
		maxf = 8
	}
	var v float64
	switch s.Dist {
	case "lognormal":
		v = math.Exp(s.Mu + s.Sigma*rng.NormFloat64())
	case "pareto":
		min := s.Min
		if min == 0 {
			min = 0.25
		}
		// Inverse-CDF draw: min / U^{1/alpha}.
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		v = min / math.Pow(u, 1/s.Alpha)
	default:
		v = 1
	}
	if v > maxf {
		v = maxf
	}
	return v
}

func (p *Profile) fill() {
	if p.CalibrationTol == 0 {
		p.CalibrationTol = 0.02
	}
	if p.Mix == (Mix{}) {
		// Heavy on scans and dumps: the paper's traffic totals
		// (≈1200 GB over ≈27k queries against a ≈700 MB release) mean
		// the average query moves tens of megabytes, so extract-style
		// queries dominate the byte volume while identity/aggregate
		// queries dominate nothing but the count.
		p.Mix = Mix{Range: 0.32, Spatial: 0.17, Identity: 0.10, Join: 0.08, Aggregate: 0.05, Bulk: 0.28}
	}
	p.Mix = p.Mix.normalized()
	if p.PopularColumns == 0 {
		p.PopularColumns = 12
	}
	if p.DriftEvery == 0 {
		p.DriftEvery = 2500
	}
	if p.IDReuseProb == 0 {
		p.IDReuseProb = 0.05
	}
	if p.CampaignEvery == 0 {
		p.CampaignEvery = 1100
	}
	if p.CampaignLen == 0 {
		p.CampaignLen = 500
	}
}

// EDRProfile returns the profile matching the paper's EDR trace:
// 27,663 queries with a sequence cost of 1216.94 GB.
func EDRProfile() Profile {
	return Profile{
		Name:               "edr",
		Schema:             catalog.EDR(),
		Queries:            27663,
		TargetSequenceCost: gb(1216.94),
		Seed:               1001,
		LogQueries:         80,
	}
}

// DR1Profile returns the profile matching the paper's DR1 trace:
// 24,567 queries with a sequence cost of 1980.4 GB.
func DR1Profile() Profile {
	return Profile{
		Name:               "dr1",
		Schema:             catalog.DR1(),
		Queries:            24567,
		TargetSequenceCost: gb(1980.4),
		Seed:               2002,
		LogQueries:         80,
		// DR1 leans more on joins and spatial searches (a later,
		// more spectroscopically complete release).
		Mix: Mix{Range: 0.31, Spatial: 0.20, Identity: 0.09, Join: 0.10, Aggregate: 0.06, Bulk: 0.24},
	}
}

// gb converts gigabytes to bytes (decimal GB, as the paper reports).
func gb(v float64) int64 { return int64(v * 1e9) }

// ScaledProfile shrinks a profile for fast tests and benches: queries
// and sequence cost divide by factor.
func ScaledProfile(p Profile, factor int) Profile {
	if factor <= 1 {
		return p
	}
	p.Queries /= factor
	p.TargetSequenceCost /= int64(factor)
	p.LogQueries /= factor
	p.fill()
	for _, f := range []*int{&p.DriftEvery, &p.CampaignEvery, &p.CampaignLen} {
		*f /= factor
		if *f < 1 {
			*f = 1
		}
	}
	return p
}
