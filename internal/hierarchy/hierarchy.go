// Package hierarchy extends the bypass-yield model to chains of
// caches — the future work Section 3 of the paper defers ("At this
// time, we do not consider hierarchies of caches or coordinated
// caching within hierarchies").
//
// A hierarchy places caching tiers between the client and the
// federation's servers: tier 0 sits on the client's LAN, higher tiers
// sit progressively closer to the servers, and each link between
// adjacent tiers (and between the outermost tier and the servers)
// carries a per-byte cost weight. The paper's single mediator cache
// is the one-tier special case.
//
// Per access, tiers are consulted from the client outward; each
// tier's bypass-yield policy decides independently (no coordination,
// matching the paper's per-cache independence argument). A hit or
// load at tier i serves the access there: the result crosses only the
// links inside tier i, and a load's fetch traffic crosses the links
// between tier i and the nearest outer holder of the object (or the
// servers). Total cost is Σ link-bytes × link-weight.
package hierarchy

import (
	"fmt"

	"bypassyield/internal/core"
)

// Config assembles a hierarchy simulation.
type Config struct {
	// Policies lists the tier policies from the client outward.
	Policies []core.Policy
	// LinkWeights[i] is the per-byte cost of the link on the server
	// side of tier i; the last entry is the tier↔servers link. Must
	// have the same length as Policies.
	LinkWeights []float64
	// Objects resolves object descriptors (sizes, sites). Fetch costs
	// seen by each tier are derived per tier from the link weights.
	Objects map[core.ObjectID]core.Object
}

// Result is the outcome of a hierarchy run.
type Result struct {
	// LinkBytes[i] counts the bytes that crossed link i.
	LinkBytes []int64
	// Cost is Σ LinkBytes[i] × LinkWeights[i].
	Cost float64
	// TierAccts holds per-tier decision accounting (hit/bypass/load
	// counts; flow fields reflect tier-local views).
	TierAccts []core.Accounting
	// ServedAt[i] counts accesses served at tier i; the last slot
	// counts accesses served by the servers.
	ServedAt []int64
}

// Sim drives a cache hierarchy over a request trace.
type Sim struct {
	cfg Config
	// outerCost[i] is the per-byte cost from tier i to the servers:
	// Σ LinkWeights[i:].
	outerCost []float64
	// innerCost[i] is the per-byte cost from tier i to the client:
	// Σ LinkWeights[:i].
	innerCost []float64
}

// New validates the configuration and builds a simulator.
func New(cfg Config) (*Sim, error) {
	if len(cfg.Policies) == 0 {
		return nil, fmt.Errorf("hierarchy: no tiers")
	}
	if len(cfg.LinkWeights) != len(cfg.Policies) {
		return nil, fmt.Errorf("hierarchy: %d link weights for %d tiers",
			len(cfg.LinkWeights), len(cfg.Policies))
	}
	for i, w := range cfg.LinkWeights {
		if w < 0 {
			return nil, fmt.Errorf("hierarchy: negative weight on link %d", i)
		}
	}
	s := &Sim{cfg: cfg}
	n := len(cfg.Policies)
	s.outerCost = make([]float64, n)
	sum := 0.0
	for i := n - 1; i >= 0; i-- {
		sum += cfg.LinkWeights[i]
		s.outerCost[i] = sum
	}
	s.innerCost = make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		s.innerCost[i] = acc
		acc += cfg.LinkWeights[i]
	}
	return s, nil
}

// tierObject rewrites an object's fetch cost to tier i's view: the
// byte cost of pulling it from the servers across the outer links.
func (s *Sim) tierObject(i int, obj core.Object) core.Object {
	fc := int64(float64(obj.Size) * s.outerCost[i])
	if fc < 1 {
		fc = 1
	}
	obj.FetchCost = fc
	return obj
}

// Run simulates the trace.
func (s *Sim) Run(reqs []core.Request) (*Result, error) {
	n := len(s.cfg.Policies)
	res := &Result{
		LinkBytes: make([]int64, n),
		TierAccts: make([]core.Accounting, n),
		ServedAt:  make([]int64, n+1),
	}
	for _, req := range reqs {
		for _, acc := range req.Accesses {
			obj, ok := s.cfg.Objects[acc.Object]
			if !ok {
				return nil, &core.UnknownObjectError{ID: acc.Object, Seq: req.Seq}
			}
			if err := s.access(req.Seq, obj, acc.Yield, res); err != nil {
				return nil, err
			}
		}
	}
	for i, b := range res.LinkBytes {
		res.Cost += float64(b) * s.cfg.LinkWeights[i]
	}
	return res, nil
}

// access routes one access through the tiers.
func (s *Sim) access(t int64, obj core.Object, yield int64, res *Result) error {
	n := len(s.cfg.Policies)
	for i := 0; i < n; i++ {
		tobj := s.tierObject(i, obj)
		d := s.cfg.Policies[i].Access(t, tobj, yield)
		if err := core.Account(&res.TierAccts[i], tobj, yield, d); err != nil {
			return err
		}
		switch d {
		case core.Hit:
			s.chargeResult(res, yield, i)
			res.ServedAt[i]++
			return nil
		case core.Load:
			// The fetch crosses links from tier i to the nearest
			// outer tier holding the object, or the servers.
			src := n // server by default
			for j := i + 1; j < n; j++ {
				if s.cfg.Policies[j].Contains(obj.ID) {
					src = j
					break
				}
			}
			for l := i; l < src; l++ {
				res.LinkBytes[l] += obj.Size
			}
			s.chargeResult(res, yield, i)
			res.ServedAt[i]++
			return nil
		case core.Bypass:
			// Fall through to the next tier.
		default:
			return &core.BadDecisionError{Policy: s.cfg.Policies[i].Name(), Decision: d}
		}
	}
	// Served by the federation's servers: the result crosses every
	// link.
	s.chargeResult(res, yield, n)
	res.ServedAt[n]++
	return nil
}

// chargeResult bills the result bytes across the links between the
// serving point and the client (links 0..served-1).
func (s *Sim) chargeResult(res *Result, yield int64, served int) {
	for l := 0; l < served; l++ {
		res.LinkBytes[l] += yield
	}
}
