package hierarchy

import (
	"math/rand"
	"testing"

	"bypassyield/internal/core"
)

func obj(id string, size int64) core.Object {
	return core.Object{ID: core.ObjectID(id), Size: size, FetchCost: size}
}

func objects(objs ...core.Object) map[core.ObjectID]core.Object {
	m := map[core.ObjectID]core.Object{}
	for _, o := range objs {
		m[o.ID] = o
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("no tiers should error")
	}
	if _, err := New(Config{
		Policies:    []core.Policy{core.NewNoCache()},
		LinkWeights: []float64{1, 1},
	}); err == nil {
		t.Fatal("mismatched weights should error")
	}
	if _, err := New(Config{
		Policies:    []core.Policy{core.NewNoCache()},
		LinkWeights: []float64{-1},
	}); err == nil {
		t.Fatal("negative weight should error")
	}
}

func TestSingleTierMatchesFlatSimulator(t *testing.T) {
	// A one-tier hierarchy with weight 1 must reproduce the flat
	// bypass-yield accounting exactly.
	a := obj("a", 100)
	m := objects(a)
	var reqs []core.Request
	r := rand.New(rand.NewSource(5))
	for i := int64(1); i <= 500; i++ {
		reqs = append(reqs, core.Request{Seq: i, Accesses: []core.Access{
			{Object: a.ID, Yield: int64(r.Intn(100))},
		}})
	}

	flat := core.NewRateProfile(core.RateProfileConfig{Capacity: 100})
	sim := &core.Simulator{Policy: flat, Objects: m}
	flatRes, err := sim.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}

	h, err := New(Config{
		Policies:    []core.Policy{core.NewRateProfile(core.RateProfileConfig{Capacity: 100})},
		LinkWeights: []float64{1},
		Objects:     m,
	})
	if err != nil {
		t.Fatal(err)
	}
	hres, err := h.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if int64(hres.Cost) != flatRes.Acct.WANBytes() {
		t.Fatalf("hierarchy cost %v != flat WAN %d", hres.Cost, flatRes.Acct.WANBytes())
	}
}

func TestHitAtInnerTierCostsNothing(t *testing.T) {
	a := obj("a", 10)
	h, err := New(Config{
		Policies: []core.Policy{
			core.NewGDS(100), // inline: loads on first access
			core.NewNoCache(),
		},
		LinkWeights: []float64{1, 1},
		Objects:     objects(a),
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []core.Request{
		{Seq: 1, Accesses: []core.Access{{Object: a.ID, Yield: 5}}}, // load at tier 0
		{Seq: 2, Accesses: []core.Access{{Object: a.ID, Yield: 5}}}, // hit at tier 0
	}
	res, err := h.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Load crosses both links (fetch from server): 10+10; the hit is
	// free.
	if res.LinkBytes[0] != 10 || res.LinkBytes[1] != 10 {
		t.Fatalf("link bytes = %v, want [10 10]", res.LinkBytes)
	}
	if res.ServedAt[0] != 2 {
		t.Fatalf("served at tier 0 = %d, want 2", res.ServedAt[0])
	}
}

func TestMidTierHitCrossesInnerLinksOnly(t *testing.T) {
	a := obj("a", 10)
	h, err := New(Config{
		Policies: []core.Policy{
			core.NewNoCache(), // tier 0 always bypasses
			core.NewGDS(100),  // tier 1 caches
		},
		LinkWeights: []float64{1, 3},
		Objects:     objects(a),
	})
	if err != nil {
		t.Fatal(err)
	}
	reqs := []core.Request{
		{Seq: 1, Accesses: []core.Access{{Object: a.ID, Yield: 4}}}, // tier1 load: fetch crosses link1 (server side)
		{Seq: 2, Accesses: []core.Access{{Object: a.ID, Yield: 4}}}, // tier1 hit: result crosses link0 only
	}
	res, err := h.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// Query 1: fetch 10 bytes over link1, result 4 over link0.
	// Query 2: result 4 over link0.
	if res.LinkBytes[0] != 8 || res.LinkBytes[1] != 10 {
		t.Fatalf("link bytes = %v, want [8 10]", res.LinkBytes)
	}
	if res.Cost != 8*1+10*3 {
		t.Fatalf("cost = %v, want 38", res.Cost)
	}
}

func TestFetchFromOuterTierNotServer(t *testing.T) {
	a := obj("a", 10)
	tier1 := core.NewGDS(100)
	h, err := New(Config{
		Policies: []core.Policy{
			core.NewGDS(100),
			tier1,
		},
		LinkWeights: []float64{1, 5},
		Objects:     objects(a),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-warm tier 1 directly.
	tier1.Access(0, core.Object{ID: a.ID, Size: 10, FetchCost: 50}, 10)
	if !tier1.Contains(a.ID) {
		t.Fatal("tier 1 should hold a")
	}
	// Tier 0 load should now fetch from tier 1, crossing only link 0.
	res, err := h.Run([]core.Request{
		{Seq: 1, Accesses: []core.Access{{Object: a.ID, Yield: 9}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tier 0 is GDS (inline): it loads on the miss. Fetch = 10 bytes
	// over link 0 only; result 9 bytes over no links (served at tier
	// 0 after load... the load itself serves the access locally).
	if res.LinkBytes[1] != 0 {
		t.Fatalf("server link carried %d bytes; fetch should come from tier 1", res.LinkBytes[1])
	}
	if res.LinkBytes[0] != 10 {
		t.Fatalf("link 0 = %d, want 10 (the object fetch)", res.LinkBytes[0])
	}
}

func TestMissEverywhereCrossesAllLinks(t *testing.T) {
	a := obj("a", 1000)
	h, err := New(Config{
		Policies:    []core.Policy{core.NewNoCache(), core.NewNoCache()},
		LinkWeights: []float64{2, 3},
		Objects:     objects(a),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.Run([]core.Request{
		{Seq: 1, Accesses: []core.Access{{Object: a.ID, Yield: 7}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.LinkBytes[0] != 7 || res.LinkBytes[1] != 7 {
		t.Fatalf("link bytes = %v, want [7 7]", res.LinkBytes)
	}
	if res.Cost != 7*2+7*3 {
		t.Fatalf("cost = %v, want 35", res.Cost)
	}
	if res.ServedAt[2] != 1 {
		t.Fatal("access should be served by the servers")
	}
}

func TestTierFetchCostsReflectDistance(t *testing.T) {
	a := obj("a", 100)
	s, err := New(Config{
		Policies:    []core.Policy{core.NewNoCache(), core.NewNoCache(), core.NewNoCache()},
		LinkWeights: []float64{1, 2, 4},
		Objects:     objects(a),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Tier 0 is 1+2+4 = 7 per byte from the servers; tier 2 is 4.
	if got := s.tierObject(0, a).FetchCost; got != 700 {
		t.Fatalf("tier 0 fetch = %d, want 700", got)
	}
	if got := s.tierObject(2, a).FetchCost; got != 400 {
		t.Fatalf("tier 2 fetch = %d, want 400", got)
	}
}

func TestTwoTierBeatsSingleOnSharedLink(t *testing.T) {
	// A client-side tier in front of the mediator saves the
	// client↔mediator link on repeated small-object traffic.
	a := obj("a", 50)
	m := objects(a)
	var reqs []core.Request
	for i := int64(1); i <= 400; i++ {
		reqs = append(reqs, core.Request{Seq: i, Accesses: []core.Access{{Object: a.ID, Yield: 40}}})
	}
	single, err := New(Config{
		Policies:    []core.Policy{core.NewRateProfile(core.RateProfileConfig{Capacity: 100})},
		LinkWeights: []float64{1},
		Objects:     m,
	})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := single.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	double, err := New(Config{
		Policies: []core.Policy{
			core.NewRateProfile(core.RateProfileConfig{Capacity: 100}),
			core.NewRateProfile(core.RateProfileConfig{Capacity: 100}),
		},
		LinkWeights: []float64{1, 1},
		Objects:     m,
	})
	if err != nil {
		t.Fatal(err)
	}
	dres, err := double.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	// The single tier here plays the role of the outer mediator: its
	// hits still ship results over the client link, which the
	// two-tier setup serves locally. Compare total costs with the
	// client link included for both: single-tier cost must count the
	// client link too, so rebuild it as NoCache + mediator.
	baseline, err := New(Config{
		Policies:    []core.Policy{core.NewNoCache(), core.NewRateProfile(core.RateProfileConfig{Capacity: 100})},
		LinkWeights: []float64{1, 1},
		Objects:     m,
	})
	if err != nil {
		t.Fatal(err)
	}
	bres, err := baseline.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if dres.Cost >= bres.Cost {
		t.Fatalf("two-tier cost %v should beat mediator-only %v", dres.Cost, bres.Cost)
	}
	_ = sres
}
