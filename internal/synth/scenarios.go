package synth

import (
	"fmt"
	"sort"

	"bypassyield/internal/workload"
)

// Canned returns a named built-in scenario, or an error naming the
// choices. The canned set is the standard suite the ROADMAP asks
// every perf PR to measure against:
//
//   - steady: one constant-rate slot; the baseline latency histogram.
//   - rampx4: a warm plateau, then a linear ramp to 4× — where the
//     open-loop harness shows achieved < target and the shed counter
//     accounts for the gap.
//   - diurnal: a sine day-cycle, the ESnet studies' dominant pattern.
//   - multi-tenant-skew: three tenants, 8/3/1 weights; the heavy one
//     hammers a Zipf-skewed hot set with Pareto-tailed sizes, the way
//     a handful of pipelines dominate a science archive's traffic.
func Canned(name string) (*Scenario, error) {
	switch name {
	case "steady":
		return &Scenario{
			Name: "steady",
			Seed: 1,
			Slots: []Slot{
				{Name: "steady", Shape: ShapeConstant, RPS: 100, Duration: seconds(10)},
			},
		}, nil
	case "rampx4":
		return &Scenario{
			Name: "rampx4",
			Seed: 2,
			Slots: []Slot{
				{Name: "warm", Shape: ShapeConstant, RPS: 60, Duration: seconds(5)},
				{Name: "ramp", Shape: ShapeRamp, RPS: 60, ToRPS: 240, Duration: seconds(15)},
			},
		}, nil
	case "diurnal":
		return &Scenario{
			Name: "diurnal",
			Seed: 3,
			Slots: []Slot{
				{Name: "day", Shape: ShapeSine, RPS: 80, Amp: 60, Period: seconds(20), Duration: seconds(40)},
			},
		}, nil
	case "multi-tenant-skew":
		return &Scenario{
			Name: "multi-tenant-skew",
			Seed: 4,
			Slots: []Slot{
				{Name: "mixed", Shape: ShapeConstant, RPS: 120, Duration: seconds(15)},
			},
			Tenants: []Tenant{
				{
					Name: "pipeline", Weight: 8, ZipfS: 1.4,
					Mix:  &workload.Mix{Range: 0.5, Identity: 0.2, Bulk: 0.3},
					Size: &workload.SizeShape{Dist: "pareto", Alpha: 1.2, Min: 0.3},
				},
				{
					Name: "portal", Weight: 3, ZipfS: 1.1,
					Mix: &workload.Mix{Spatial: 0.5, Identity: 0.3, Aggregate: 0.2},
				},
				{Name: "adhoc", Weight: 1},
			},
		}, nil
	default:
		return nil, fmt.Errorf("synth: unknown canned scenario %q (have %v)", name, CannedNames())
	}
}

// CannedNames lists the built-in scenarios.
func CannedNames() []string {
	names := []string{"steady", "rampx4", "diurnal", "multi-tenant-skew"}
	sort.Strings(names)
	return names
}

func seconds(n float64) Duration { return Duration(n * 1e9) }
