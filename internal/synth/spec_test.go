package synth

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestParseScenarioGolden parses the checked-in spec and pins every
// field the grammar can express.
func TestParseScenarioGolden(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "scenario.json"))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Name != "nightly-mix" || sc.Release != "dr1" || sc.Seed != 42 || sc.Arrival != ArrivalUniform {
		t.Fatalf("header = %q/%q/%d/%q", sc.Name, sc.Release, sc.Seed, sc.Arrival)
	}
	if len(sc.Slots) != 3 {
		t.Fatalf("slots = %d, want 3", len(sc.Slots))
	}
	warm, surge, night := sc.Slots[0], sc.Slots[1], sc.Slots[2]
	if warm.Shape != ShapeConstant || warm.RPS != 40 || warm.Duration.D() != 5*time.Second {
		t.Fatalf("warm = %+v", warm)
	}
	if surge.Shape != ShapeRamp || surge.RPS != 40 || surge.ToRPS != 160 || surge.Duration.D() != 20*time.Second {
		t.Fatalf("surge = %+v", surge)
	}
	if night.Shape != ShapeSine || night.Amp != 50 || night.Period.D() != 30*time.Second ||
		night.Start.D() != 30*time.Second || night.Duration.D() != time.Minute {
		t.Fatalf("night = %+v", night)
	}
	if len(sc.Tenants) != 2 {
		t.Fatalf("tenants = %d, want 2", len(sc.Tenants))
	}
	p := sc.Tenants[0]
	if p.Name != "pipeline" || p.Weight != 6 || p.ZipfS != 1.3 {
		t.Fatalf("pipeline = %+v", p)
	}
	if p.Mix == nil || p.Mix.Range != 0.5 || p.Mix.Bulk != 0.5 {
		t.Fatalf("pipeline mix = %+v", p.Mix)
	}
	if p.Size == nil || p.Size.Dist != "pareto" || p.Size.Alpha != 1.2 || p.Size.Min != 0.3 {
		t.Fatalf("pipeline size = %+v", p.Size)
	}
	if sc.Tenants[1].Seed != 77 {
		t.Fatalf("adhoc seed = %d, want 77", sc.Tenants[1].Seed)
	}

	// The explicit-start slot pins its window: warm [0,5s), surge
	// [5s,25s), night [30s,90s) — a 5s gap, no overlap.
	starts, ends := sc.Windows()
	if starts[2] != 30*time.Second || ends[2] != 90*time.Second {
		t.Fatalf("night window = [%v, %v)", starts[2], ends[2])
	}
	if got := sc.TotalDuration(); got != 90*time.Second {
		t.Fatalf("total duration = %v, want 90s", got)
	}
}

// TestScenarioJSONRoundTrip: every canned scenario survives a
// marshal/parse cycle intact — the JSON grammar covers the whole
// model.
func TestScenarioJSONRoundTrip(t *testing.T) {
	for _, name := range CannedNames() {
		sc, err := Canned(name)
		if err != nil {
			t.Fatal(err)
		}
		sc.fill()
		data, err := json.MarshalIndent(sc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseScenario(data)
		if err != nil {
			t.Fatalf("%s: re-parse: %v\n%s", name, err, data)
		}
		if len(back.Slots) != len(sc.Slots) || len(back.Tenants) != len(sc.Tenants) {
			t.Fatalf("%s: round trip lost structure: %+v vs %+v", name, back, sc)
		}
		for i := range sc.Slots {
			if back.Slots[i] != sc.Slots[i] {
				t.Fatalf("%s: slot %d round-tripped to %+v, want %+v", name, i, back.Slots[i], sc.Slots[i])
			}
		}
	}
}

// TestParseScenarioRejects pins the validation error surface.
func TestParseScenarioRejects(t *testing.T) {
	cases := []struct {
		name string
		spec string
		want string
	}{
		{"no slots", `{"name":"x","slots":[]}`, "no slots"},
		{"negative rps", `{"slots":[{"shape":"constant","rps":-5,"duration":"1s"}]}`, "must be ≥ 0"},
		{"zero duration", `{"slots":[{"shape":"constant","rps":5,"duration":"0s"}]}`, "must be positive"},
		{"negative duration", `{"slots":[{"shape":"constant","rps":5,"duration":"-3s"}]}`, "must be positive"},
		{"unknown shape", `{"slots":[{"shape":"square","rps":5,"duration":"1s"}]}`, "unknown shape"},
		{"negative ramp target", `{"slots":[{"shape":"ramp","rps":5,"to_rps":-1,"duration":"1s"}]}`, "to_rps"},
		{"sine amp exceeds midline", `{"slots":[{"shape":"sine","rps":10,"amp":20,"duration":"1s"}]}`, "exceeds midline"},
		{"overlapping windows", `{"slots":[
			{"shape":"constant","rps":5,"duration":"10s"},
			{"shape":"constant","rps":5,"start":"4s","duration":"2s"}]}`, "overlaps"},
		{"bad arrival", `{"arrival":"bursty","slots":[{"shape":"constant","rps":5,"duration":"1s"}]}`, "arrival"},
		{"bad release", `{"release":"dr9","slots":[{"shape":"constant","rps":5,"duration":"1s"}]}`, "release"},
		{"unknown field", `{"slotz":[]}`, "unknown field"},
		{"bad duration string", `{"slots":[{"shape":"constant","rps":5,"duration":"fast"}]}`, "duration"},
		{"negative tenant weight", `{"slots":[{"shape":"constant","rps":5,"duration":"1s"}],
			"tenants":[{"name":"a","weight":-1}]}`, "weight"},
		{"zero total weight", `{"slots":[{"shape":"constant","rps":5,"duration":"1s"}],
			"tenants":[{"name":"a","weight":0}]}`, "weights sum"},
		{"negative zipf", `{"slots":[{"shape":"constant","rps":5,"duration":"1s"}],
			"tenants":[{"name":"a","weight":1,"zipf_s":-1}]}`, "zipf_s"},
		{"bad size dist", `{"slots":[{"shape":"constant","rps":5,"duration":"1s"}],
			"tenants":[{"name":"a","weight":1,"size":{"dist":"weibull"}}]}`, "size distribution"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario([]byte(tc.spec))
			if err == nil {
				t.Fatalf("spec accepted, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}

// TestParseSlotsGrammar covers the compact flag grammar.
func TestParseSlotsGrammar(t *testing.T) {
	slots, err := ParseSlots("constant:100x30s, ramp:50..200x1m, sine:80~60x2m/30s")
	if err != nil {
		t.Fatal(err)
	}
	if len(slots) != 3 {
		t.Fatalf("slots = %d, want 3", len(slots))
	}
	if s := slots[0]; s.Shape != ShapeConstant || s.RPS != 100 || s.Duration.D() != 30*time.Second {
		t.Fatalf("constant = %+v", s)
	}
	if s := slots[1]; s.Shape != ShapeRamp || s.RPS != 50 || s.ToRPS != 200 || s.Duration.D() != time.Minute {
		t.Fatalf("ramp = %+v", s)
	}
	if s := slots[2]; s.Shape != ShapeSine || s.RPS != 80 || s.Amp != 60 ||
		s.Duration.D() != 2*time.Minute || s.Period.D() != 30*time.Second {
		t.Fatalf("sine = %+v", s)
	}
	// Sine without a period leaves it to default at schedule time.
	slots, err = ParseSlots("sine:80~60x2m")
	if err != nil {
		t.Fatal(err)
	}
	if slots[0].Period != 0 {
		t.Fatalf("period = %v, want 0 (defaulted later)", slots[0].Period.D())
	}

	for _, bad := range []string{
		"", "constant", "constant:x10s", "constant:10", "ramp:5x10s",
		"sine:80x10s", "square:5x10s", "constant:5xfast", "sine:80~60x2m/slow",
	} {
		if _, err := ParseSlots(bad); err == nil {
			t.Errorf("ParseSlots(%q) accepted, want error", bad)
		}
	}
}

// TestScheduleDeterminism: the acceptance-criteria determinism proof —
// same seed ⇒ identical arrival schedule and statements; different
// seed ⇒ different.
func TestScheduleDeterminism(t *testing.T) {
	mk := func(seed int64) ([]Arrival, []Op) {
		sc, err := Canned("multi-tenant-skew")
		if err != nil {
			t.Fatal(err)
		}
		sc.Seed = seed
		arr, err := Schedule(sc)
		if err != nil {
			t.Fatal(err)
		}
		ops, err := Ops(sc, arr)
		if err != nil {
			t.Fatal(err)
		}
		return arr, ops
	}
	a1, o1 := mk(11)
	a2, o2 := mk(11)
	b, _ := mk(12)
	if len(a1) != len(a2) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("arrival %d differs under one seed: %+v vs %+v", i, a1[i], a2[i])
		}
		if o1[i] != o2[i] {
			t.Fatalf("op %d differs under one seed", i)
		}
	}
	if len(a1) == len(b) {
		same := true
		for i := range a1 {
			if a1[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical schedules")
		}
	}
}

// TestScheduleShapes: arrival counts track the rate integral, arrivals
// stay inside their slot windows and nondecreasing.
func TestScheduleShapes(t *testing.T) {
	sc := &Scenario{
		Name: "shapes",
		Seed: 5,
		Slots: []Slot{
			{Name: "c", Shape: ShapeConstant, RPS: 100, Duration: seconds(10)},
			{Name: "r", Shape: ShapeRamp, RPS: 50, ToRPS: 150, Duration: seconds(10)},
			{Name: "s", Shape: ShapeSine, RPS: 80, Amp: 40, Duration: seconds(10)},
		},
	}
	arr, err := Schedule(sc)
	if err != nil {
		t.Fatal(err)
	}
	want := sc.ExpectedOps() // 1000 + 1000 + 800
	if got := float64(len(arr)); got < want*0.85 || got > want*1.15 {
		t.Fatalf("poisson arrivals = %v, want within 15%% of %v", got, want)
	}
	starts, ends := sc.Windows()
	perSlot := map[int]int{}
	var prev time.Duration
	for i, a := range arr {
		if a.At < prev {
			t.Fatalf("arrival %d goes backwards: %v after %v", i, a.At, prev)
		}
		prev = a.At
		if a.At < starts[a.Slot] || a.At >= ends[a.Slot] {
			t.Fatalf("arrival %d at %v outside slot %d window [%v, %v)", i, a.At, a.Slot, starts[a.Slot], ends[a.Slot])
		}
		perSlot[a.Slot]++
	}
	for s, want := range map[int]float64{0: 1000, 1: 1000, 2: 800} {
		if got := float64(perSlot[s]); got < want*0.8 || got > want*1.2 {
			t.Fatalf("slot %d arrivals = %v, want ≈ %v", s, got, want)
		}
	}

	// Uniform pacing is exact for a constant slot: 10s at 100 rps is
	// 1000 arrivals, exactly 10ms apart.
	u := &Scenario{Name: "u", Arrival: ArrivalUniform, Seed: 1,
		Slots: []Slot{{Shape: ShapeConstant, RPS: 100, Duration: seconds(10)}}}
	ua, err := Schedule(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(ua) != 1000 {
		t.Fatalf("uniform arrivals = %d, want exactly 1000", len(ua))
	}
	if gap := ua[1].At - ua[0].At; gap != 10*time.Millisecond {
		t.Fatalf("uniform gap = %v, want 10ms", gap)
	}
}

// TestTenantWeighting: tenant draw frequencies track their weights.
func TestTenantWeighting(t *testing.T) {
	sc := &Scenario{
		Name:  "tenants",
		Seed:  9,
		Slots: []Slot{{Shape: ShapeConstant, RPS: 200, Duration: seconds(10)}},
		Tenants: []Tenant{
			{Name: "heavy", Weight: 8},
			{Name: "mid", Weight: 3},
			{Name: "light", Weight: 1},
		},
	}
	arr, err := Schedule(sc)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, a := range arr {
		counts[a.Tenant]++
	}
	total := float64(len(arr))
	for i, wantFrac := range []float64{8.0 / 12, 3.0 / 12, 1.0 / 12} {
		got := float64(counts[i]) / total
		if got < wantFrac*0.7 || got > wantFrac*1.3 {
			t.Fatalf("tenant %d frequency = %.3f, want ≈ %.3f", i, got, wantFrac)
		}
	}
}

// TestScale compresses time and rate together.
func TestScale(t *testing.T) {
	sc, err := Canned("rampx4")
	if err != nil {
		t.Fatal(err)
	}
	base := sc.TotalDuration()
	baseOps := sc.ExpectedOps()
	sc.Scale(4, 0.5)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := sc.TotalDuration(); got != base/4 {
		t.Fatalf("scaled duration = %v, want %v", got, base/4)
	}
	if got := sc.ExpectedOps(); got < baseOps/8*0.99 || got > baseOps/8*1.01 {
		t.Fatalf("scaled ops = %v, want ≈ %v", got, baseOps/8)
	}
}

// TestCannedValidate: every canned scenario passes its own validation
// and produces a nonempty deterministic schedule.
func TestCannedValidate(t *testing.T) {
	for _, name := range CannedNames() {
		sc, err := Canned(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		arr, err := Schedule(sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(arr) == 0 {
			t.Fatalf("%s: empty schedule", name)
		}
	}
	if _, err := Canned("nope"); err == nil {
		t.Fatal("unknown canned scenario accepted")
	}
}
