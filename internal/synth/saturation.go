package synth

import (
	"context"
	"fmt"
	"time"
)

// Saturation-search defaults.
const (
	// DefaultSatLowRPS is the first probe rate — low enough that a
	// healthy federation passes it and the expansion phase has a floor.
	DefaultSatLowRPS = 25
	// DefaultSatMaxRPS caps the expansion phase so a server that never
	// saturates (or a broken pass criterion) cannot search forever.
	DefaultSatMaxRPS = 3200
	// DefaultSatProbe is the per-probe schedule length.
	DefaultSatProbe = 4 * time.Second
	// DefaultSatBisections bounds the refinement phase; with doubling
	// expansion the knee lands within low·2^-n of the truth.
	DefaultSatBisections = 4
	// DefaultSatAttainment is the SLO attainment a passing probe must
	// reach; the shed+error fraction must stay within its complement.
	DefaultSatAttainment = 0.95
)

// SaturationConfig parameterizes the knee search. Zero values take
// the defaults above; Run carries the transport knobs (address, SLO,
// in-flight cap) shared with plain runs.
type SaturationConfig struct {
	Run RunConfig
	// Base supplies the workload shape — release, seed, arrivals,
	// tenants — applied to every probe. Nil means the default
	// single-tenant EDR mix.
	Base *Scenario
	// LowRPS seeds the expansion phase; MaxRPS caps it.
	LowRPS, MaxRPS float64
	// ProbeDuration is each probe's scheduled window.
	ProbeDuration time.Duration
	// Bisections is the number of refinement probes after expansion
	// brackets the knee.
	Bisections int
	// MinAttainment is the SLO attainment a probe must reach to pass;
	// the shed+error fraction of the probe's target ops must stay
	// within 1 − MinAttainment.
	MinAttainment float64
}

// SaturationProbe is one probe's verdict.
type SaturationProbe struct {
	TargetRPS   float64 `json:"target_rps"`
	AchievedRPS float64 `json:"achieved_rps"`
	P50US       int64   `json:"p50_us"`
	P99US       int64   `json:"p99_us"`
	Attainment  float64 `json:"attainment"`
	Shed        int64   `json:"shed"`
	Errors      int64   `json:"errors"`
	Pass        bool    `json:"pass"`
}

// SaturationReport is the knee search's result: the highest probed
// rate the federation sustains with p99 under the SLO and without
// shedding, plus the full probe trail for audits.
type SaturationReport struct {
	// KneeRPS is the highest passing probe rate (0 when even the
	// lowest probe failed).
	KneeRPS float64 `json:"knee_rps"`
	// ThresholdUS is the latency objective probes were judged against.
	ThresholdUS int64 `json:"threshold_us"`
	// MinAttainment is the pass criterion's attainment floor.
	MinAttainment float64 `json:"min_attainment"`
	// ProbeSeconds is each probe's scheduled window.
	ProbeSeconds float64 `json:"probe_seconds"`
	// Bounded notes a search that ended at MaxRPS still passing — the
	// true knee is above the cap.
	Bounded bool `json:"bounded,omitempty"`
	// Probes is the search trail in probe order.
	Probes []SaturationProbe `json:"probes"`
}

// Saturate binary-searches the saturation knee: the maximum constant
// request rate the proxy sustains with p99 latency under the SLO and
// the shed+error fraction within the attainment budget. The search
// doubles from LowRPS until a probe fails (or MaxRPS), then bisects
// the bracket. The returned Report is the best passing probe's full
// report — the standard perf-gate shape — with the search trail
// attached as Report.Saturation.
func Saturate(ctx context.Context, cfg SaturationConfig) (*Report, error) {
	if cfg.LowRPS <= 0 {
		cfg.LowRPS = DefaultSatLowRPS
	}
	if cfg.MaxRPS <= 0 {
		cfg.MaxRPS = DefaultSatMaxRPS
	}
	if cfg.MaxRPS < cfg.LowRPS {
		cfg.MaxRPS = cfg.LowRPS
	}
	if cfg.ProbeDuration <= 0 {
		cfg.ProbeDuration = DefaultSatProbe
	}
	if cfg.Bisections <= 0 {
		cfg.Bisections = DefaultSatBisections
	}
	if cfg.MinAttainment <= 0 || cfg.MinAttainment > 1 {
		cfg.MinAttainment = DefaultSatAttainment
	}
	base := cfg.Base
	if base == nil {
		base = &Scenario{Name: "saturation", Seed: 5}
	}
	slo := cfg.Run.SLO
	if slo <= 0 {
		slo = DefaultSLO
	}
	logf := cfg.Run.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	sat := &SaturationReport{
		ThresholdUS:   slo.Microseconds(),
		MinAttainment: cfg.MinAttainment,
		ProbeSeconds:  cfg.ProbeDuration.Seconds(),
	}
	var best *Report  // highest passing probe's full report
	var worst *Report // the first probe, kept for the all-fail case

	probe := func(rps float64) (bool, error) {
		sc := &Scenario{
			Name:    fmt.Sprintf("saturation@%.0frps", rps),
			Release: base.Release,
			Seed:    base.Seed + int64(len(sat.Probes)),
			Arrival: base.Arrival,
			Slots: []Slot{{
				Name: "probe", Shape: ShapeConstant,
				RPS: rps, Duration: Duration(cfg.ProbeDuration),
			}},
			Tenants: base.Tenants,
		}
		if err := sc.Validate(); err != nil {
			return false, err
		}
		runCfg := cfg.Run
		runCfg.Obs = nil // each probe owns its histograms
		rep, err := Run(ctx, sc, runCfg)
		if err != nil {
			return false, err
		}
		p := SaturationProbe{
			TargetRPS:   rps,
			AchievedRPS: rep.AchievedRPS,
			P50US:       rep.Latency.P50US,
			P99US:       rep.Latency.P99US,
			Attainment:  rep.SLO.Attainment,
			Shed:        rep.Shed,
			Errors:      rep.Errors,
		}
		// Pass: tail under the objective, attainment at the floor, and
		// the open-loop loss (shed + errors, which never enter the
		// latency histogram) within the attainment budget.
		lossBudget := int64(float64(rep.TargetOps) * (1 - cfg.MinAttainment))
		p.Pass = rep.Completed > 0 &&
			p.P99US <= sat.ThresholdUS &&
			p.Attainment >= cfg.MinAttainment &&
			p.Shed+p.Errors <= lossBudget
		sat.Probes = append(sat.Probes, p)
		logf("synth: saturation probe %.0f rps: p99 %.2fms, attainment %.2f%%, shed %d, errors %d → %s",
			rps, float64(p.P99US)/1e3, p.Attainment*100, p.Shed, p.Errors,
			map[bool]string{true: "pass", false: "fail"}[p.Pass])
		if worst == nil {
			worst = rep
		}
		if p.Pass && rps >= sat.KneeRPS {
			sat.KneeRPS = rps
			best = rep
		}
		return p.Pass, nil
	}

	// Expansion: double from LowRPS until a probe fails or MaxRPS
	// passes (the knee is above the cap).
	low, high := 0.0, 0.0
	for rps := cfg.LowRPS; ; {
		pass, err := probe(rps)
		if err != nil {
			return nil, err
		}
		if !pass {
			high = rps
			break
		}
		low = rps
		if rps >= cfg.MaxRPS {
			sat.Bounded = true
			break
		}
		rps = min(rps*2, cfg.MaxRPS)
	}

	// Refinement: bisect the bracket. Skipped when even LowRPS failed
	// (knee reported as 0) or when the cap passed (nothing to bracket).
	if low > 0 && high > 0 {
		for i := 0; i < cfg.Bisections; i++ {
			mid := (low + high) / 2
			pass, err := probe(mid)
			if err != nil {
				return nil, err
			}
			if pass {
				low = mid
			} else {
				high = mid
			}
		}
	}

	final := best
	if final == nil {
		final = worst // nothing passed; surface the failing probe's evidence
	}
	final.Scenario = "saturation"
	final.Saturation = sat
	return final, nil
}
