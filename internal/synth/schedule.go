package synth

import (
	"fmt"
	"math/rand"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/workload"
)

// Arrival is one scheduled operation: fire at At, as tenant Tenant.
type Arrival struct {
	// At is the offset from run start.
	At time.Duration
	// Slot indexes the scenario slot the arrival belongs to.
	Slot int
	// Tenant indexes the scenario tenant issuing the query.
	Tenant int
}

// Schedule derives the scenario's full arrival sequence. The result
// is a pure function of the scenario (rates, windows, seed): the
// dispatcher replays it against the wall clock without consulting the
// system under test, which is what makes the harness open-loop.
//
// Poisson pacing draws exponential inter-arrival gaps at each slot's
// peak rate and thins them to the instantaneous rate curve (Lewis &
// Shedler); uniform pacing steps deterministically by 1/r(t).
func Schedule(sc *Scenario) ([]Arrival, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sc.fill()
	rng := rand.New(rand.NewSource(sc.Seed))
	picker := newTenantPicker(sc.Tenants)
	starts, _ := sc.Windows()

	var out []Arrival
	for i, slot := range sc.Slots {
		base, dur := starts[i], slot.Duration.D()
		rmax := slot.maxRate()
		if rmax <= 0 {
			continue // a zero-rate slot is a silent gap
		}
		switch sc.Arrival {
		case ArrivalUniform:
			// Deterministic pacing: step by the instantaneous period.
			// Zero-rate stretches (a sine touching its floor) advance by
			// a fixed epsilon without emitting.
			for t := time.Duration(0); t < dur; {
				r := slot.Rate(t)
				if r <= 0 {
					t += 10 * time.Millisecond
					continue
				}
				out = append(out, Arrival{At: base + t, Slot: i, Tenant: picker.pick(rng)})
				t += time.Duration(float64(time.Second) / r)
			}
		default: // poisson
			for t := time.Duration(0); ; {
				gap := rng.ExpFloat64() / rmax
				t += time.Duration(gap * float64(time.Second))
				if t >= dur {
					break
				}
				if rng.Float64()*rmax <= slot.Rate(t) {
					out = append(out, Arrival{At: base + t, Slot: i, Tenant: picker.pick(rng)})
				}
			}
		}
	}
	return out, nil
}

// tenantPicker draws tenant indices proportional to weight.
type tenantPicker struct {
	cum []float64
}

func newTenantPicker(ts []Tenant) *tenantPicker {
	p := &tenantPicker{cum: make([]float64, len(ts))}
	var sum float64
	for i, t := range ts {
		sum += t.Weight
		p.cum[i] = sum
	}
	return p
}

func (p *tenantPicker) pick(rng *rand.Rand) int {
	if len(p.cum) <= 1 {
		return 0
	}
	r := rng.Float64() * p.cum[len(p.cum)-1]
	for i, c := range p.cum {
		if r <= c {
			return i
		}
	}
	return len(p.cum) - 1
}

// Op is a fully materialized operation: an arrival with its statement.
type Op struct {
	Arrival
	SQL        string
	Class      string
	TenantName string
}

// Ops expands a schedule into concrete statements by drawing each
// arrival's query from its tenant's workload stream, in arrival
// order. Deterministic: tenant streams are seeded from the scenario
// seed and tenant index (or the tenant's explicit Seed), and arrivals
// consume them in schedule order.
func Ops(sc *Scenario, arrivals []Arrival) ([]Op, error) {
	sc.fill()
	schema, err := schemaFor(sc.Release)
	if err != nil {
		return nil, err
	}
	streams := make([]*workload.Stream, len(sc.Tenants))
	for i, t := range sc.Tenants {
		p := workload.Profile{
			Name:   fmt.Sprintf("%s/%s", sc.Name, t.Name),
			Schema: schema,
			// Queries is unused by streams but must be positive for the
			// profile to be well-formed elsewhere.
			Queries: 1,
			Seed:    t.Seed,
			ZipfS:   t.ZipfS,
		}
		if p.Seed == 0 {
			// Spread tenant streams far apart in seed space.
			p.Seed = sc.Seed*1_000_003 + int64(i)*7_919 + 1
		}
		if t.Mix != nil {
			p.Mix = *t.Mix
		}
		p.SizeShape = t.Size
		s, err := workload.NewStream(p)
		if err != nil {
			return nil, fmt.Errorf("synth: tenant %q: %w", t.Name, err)
		}
		streams[i] = s
	}
	ops := make([]Op, len(arrivals))
	for i, a := range arrivals {
		st := streams[a.Tenant].Next()
		ops[i] = Op{
			Arrival:    a,
			SQL:        st.SQL,
			Class:      st.Class,
			TenantName: sc.Tenants[a.Tenant].Name,
		}
	}
	return ops, nil
}

func schemaFor(release string) (*catalog.Schema, error) {
	switch release {
	case "", "edr":
		return catalog.EDR(), nil
	case "dr1":
		return catalog.DR1(), nil
	default:
		return nil, fmt.Errorf("synth: unknown release %q (have edr, dr1)", release)
	}
}
