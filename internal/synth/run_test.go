package synth

import (
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"bypassyield/internal/obs"
	"bypassyield/internal/wire"
)

// stubServer is a minimal wire-speaking endpoint: every MsgQuery gets
// a fixed ResultMsg after delay. It stands in for byproxyd so run
// tests exercise only the harness's own behavior.
func stubServer(t *testing.T, delay time.Duration, res wire.ResultMsg) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				for {
					typ, _, _, err := wire.ReadFrame(conn)
					if err != nil || typ != wire.MsgQuery {
						return
					}
					if delay > 0 {
						time.Sleep(delay)
					}
					if _, err := wire.WriteFrame(conn, wire.MsgResult, res); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

// TestRunOpenLoopSheds is the acceptance proof of open-loop
// semantics: a ramp that outruns a deliberately slow server must show
// achieved < target with the shed counter accounting for the gap —
// the arrival schedule never stretches to match the server.
func TestRunOpenLoopSheds(t *testing.T) {
	// 30ms service time with 4 in-flight slots caps throughput at
	// ~133 rps; the ramp asks for up to 400.
	addr := stubServer(t, 30*time.Millisecond, wire.ResultMsg{Columns: []string{"x"}, Rows: 1, Bytes: 100})
	sc := &Scenario{
		Name:    "overload-ramp",
		Seed:    21,
		Arrival: ArrivalUniform,
		Slots:   []Slot{{Name: "ramp", Shape: ShapeRamp, RPS: 20, ToRPS: 400, Duration: seconds(2)}},
	}
	rep, err := Run(context.Background(), sc, RunConfig{
		Addr:         addr,
		MaxInflight:  4,
		SkipScrape:   true,
		DrainTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatalf("overloaded run shed nothing: %+v", rep)
	}
	if rep.AchievedRPS >= rep.TargetRPS {
		t.Fatalf("achieved %.1f rps ≥ target %.1f under overload", rep.AchievedRPS, rep.TargetRPS)
	}
	// The open-loop accounting identities hold exactly: every target
	// op is dispatched, shed, or canceled; every dispatched op
	// completes, errors, or is abandoned at drain.
	if got := rep.Dispatched + rep.Shed + rep.Canceled; got != int64(rep.TargetOps) {
		t.Fatalf("dispatched %d + shed %d + canceled %d = %d ≠ target %d",
			rep.Dispatched, rep.Shed, rep.Canceled, got, rep.TargetOps)
	}
	if got := rep.Completed + rep.Errors + rep.Abandoned; got != rep.Dispatched {
		t.Fatalf("completed %d + errors %d + abandoned %d = %d ≠ dispatched %d",
			rep.Completed, rep.Errors, rep.Abandoned, got, rep.Dispatched)
	}
	// Wall time must not stretch with the backlog: the schedule is 2s,
	// the drain adds at most a few service times.
	if rep.WallSeconds > 4 {
		t.Fatalf("wall %.1fs: the run queued instead of shedding", rep.WallSeconds)
	}
}

// TestRunSteady: an unloaded steady run completes everything, sheds
// nothing, and fills in the latency/SLO/class accounting.
func TestRunSteady(t *testing.T) {
	addr := stubServer(t, 0, wire.ResultMsg{Columns: []string{"x"}, Rows: 2, Bytes: 250})
	sc := &Scenario{
		Name:    "steady-smoke",
		Seed:    7,
		Arrival: ArrivalUniform,
		Slots:   []Slot{{Shape: ShapeConstant, RPS: 200, Duration: seconds(1)}},
	}
	reg := obs.NewRegistry()
	rep, err := Run(context.Background(), sc, RunConfig{Addr: addr, SkipScrape: true, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TargetOps != 200 {
		t.Fatalf("target ops = %d, want 200 (uniform 200 rps × 1s)", rep.TargetOps)
	}
	if rep.Completed != 200 || rep.Shed != 0 || rep.Errors != 0 || rep.Degraded != 0 {
		t.Fatalf("steady run: %+v", rep)
	}
	if rep.BytesDelivered != 200*250 {
		t.Fatalf("bytes = %d, want %d", rep.BytesDelivered, 200*250)
	}
	if rep.Latency.Count != 200 || rep.Latency.P50US <= 0 || rep.Latency.P99US < rep.Latency.P50US {
		t.Fatalf("latency = %+v", rep.Latency)
	}
	if rep.Latency.MaxUS <= 0 {
		t.Fatalf("max latency = %d", rep.Latency.MaxUS)
	}
	if rep.SLO.Attainment != 1 || rep.SLO.Met != 200 {
		t.Fatalf("slo = %+v (local stub should be well inside %v)", rep.SLO, DefaultSLO)
	}
	if len(rep.Classes) == 0 {
		t.Fatal("no per-class summaries")
	}
	var classTotal int64
	for _, c := range rep.Classes {
		classTotal += c.Count
	}
	if classTotal != rep.Completed {
		t.Fatalf("class counts sum to %d, want %d", classTotal, rep.Completed)
	}
	if rep.AchievedRPS < 150 || rep.AchievedRPS > 250 {
		t.Fatalf("achieved = %.1f rps, want ≈ 200", rep.AchievedRPS)
	}
	// The run also feeds the shared registry for byinspect/watch.
	snap := reg.Snapshot()
	if got := snap.CounterValue("synth.completed", ""); got != 200 {
		t.Fatalf("synth.completed = %d", got)
	}
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"steady-smoke", "achieved", "p999", "per class"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("text report missing %q:\n%s", want, sb.String())
		}
	}
}

// TestRunDegraded: partial results count as degraded, not as errors.
func TestRunDegraded(t *testing.T) {
	addr := stubServer(t, 0, wire.ResultMsg{
		Rows: 1, Bytes: 10, Partial: true,
		SiteErrors: []wire.SiteErrorMsg{{Site: "spec.sdss.org", Error: "breaker open"}},
	})
	sc := &Scenario{
		Name:    "degraded",
		Seed:    3,
		Arrival: ArrivalUniform,
		Slots:   []Slot{{Shape: ShapeConstant, RPS: 50, Duration: seconds(1)}},
	}
	rep, err := Run(context.Background(), sc, RunConfig{Addr: addr, SkipScrape: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Completed != 50 || rep.Degraded != 50 {
		t.Fatalf("degraded run: %+v", rep)
	}
}

// TestRunDialFailure: a dead target yields a clean report full of
// errors, not a Run error — failures under chaos are data.
func TestRunDialFailure(t *testing.T) {
	sc := &Scenario{
		Name:    "dead-target",
		Seed:    5,
		Arrival: ArrivalUniform,
		Slots:   []Slot{{Shape: ShapeConstant, RPS: 40, Duration: seconds(1)}},
	}
	rep, err := Run(context.Background(), sc, RunConfig{
		Addr:       "127.0.0.1:1",
		SkipScrape: true,
		Dialer: func(addr string) (net.Conn, error) {
			return nil, fmt.Errorf("connection refused")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != rep.Dispatched || rep.Completed != 0 {
		t.Fatalf("dead-target run: %+v", rep)
	}
}

// TestRunCancel: canceling mid-schedule accounts the undispatched
// tail as Canceled and still satisfies the identities.
func TestRunCancel(t *testing.T) {
	addr := stubServer(t, 0, wire.ResultMsg{Rows: 1, Bytes: 1})
	sc := &Scenario{
		Name:    "cancel",
		Seed:    13,
		Arrival: ArrivalUniform,
		Slots:   []Slot{{Shape: ShapeConstant, RPS: 100, Duration: seconds(5)}},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	rep, err := Run(ctx, sc, RunConfig{Addr: addr, SkipScrape: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Canceled == 0 {
		t.Fatalf("canceled run reports no cancellations: %+v", rep)
	}
	if got := rep.Dispatched + rep.Shed + rep.Canceled; got != int64(rep.TargetOps) {
		t.Fatalf("identity broken after cancel: %d ≠ %d", got, rep.TargetOps)
	}
}
