// Package synth is the workload synthesizer and open-loop load
// harness: it turns a small scenario spec — named slots of target RPS
// (constant, linear ramp, sine diurnal), per-tenant query mixes with
// Zipf popularity skew and heavy-tailed yield-size shaping — into a
// deterministic arrival schedule with pre-generated statements, and
// drives that schedule open-loop against a live byproxyd.
//
// Open-loop means arrivals never wait on completions: the schedule is
// fixed before the run starts, a dispatcher fires each operation at
// its appointed time, and when the system under test falls behind the
// generator does not slow down — it sheds (bounded in-flight cap,
// explicit drop counter) and keeps firing. This is what makes
// queueing collapse visible: a closed-loop driver's arrival rate sags
// with the server, silently hiding coordinated omission, while an
// open-loop driver charges the full queueing delay to the latency
// histogram and accounts the overflow in the shed counter.
//
// The scenario shapes follow the ESnet in-network-cache access
// studies (heavy-tailed object popularity and sizes, diurnal and
// multi-tenant structure) and the slot-based RPS-ramp form of vhive's
// trace synthesizer; statement bodies come from internal/workload's
// SDSS profile generator, not a parallel implementation.
package synth

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"bypassyield/internal/workload"
)

// Slot shapes.
const (
	ShapeConstant = "constant"
	ShapeRamp     = "ramp"
	ShapeSine     = "sine"
)

// Arrival pacing modes.
const (
	ArrivalPoisson = "poisson" // exponential gaps (thinned to the rate curve)
	ArrivalUniform = "uniform" // deterministic 1/r(t) pacing
)

// Duration is a time.Duration that marshals as a human string
// ("1m30s") and unmarshals from either a string or nanoseconds.
type Duration time.Duration

// D returns the underlying time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "10s"-style strings or raw nanoseconds.
func (d *Duration) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("synth: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(b, &n); err != nil {
		return fmt.Errorf("synth: duration must be a string or nanoseconds: %s", b)
	}
	*d = Duration(n)
	return nil
}

// Slot is one named window of target arrival rate. Slots run back to
// back in order; a slot may pin an explicit Start offset, which must
// not overlap the previous slot's window.
type Slot struct {
	Name  string `json:"name,omitempty"`
	Shape string `json:"shape"` // constant | ramp | sine
	// RPS is the constant level, the ramp's starting rate, or the
	// sine's midline.
	RPS float64 `json:"rps"`
	// ToRPS is the ramp's final rate (ramp only).
	ToRPS float64 `json:"to_rps,omitempty"`
	// Amp is the sine's amplitude around the midline (sine only; must
	// not exceed RPS, or the rate would go negative).
	Amp float64 `json:"amp,omitempty"`
	// Period is the sine's period (default: the slot duration, one
	// full diurnal cycle per slot).
	Period Duration `json:"period,omitempty"`
	// Start optionally pins the slot's offset from scenario start.
	// Zero means "immediately after the previous slot".
	Start Duration `json:"start,omitempty"`
	// Duration is the slot's length.
	Duration Duration `json:"duration"`
}

// Rate evaluates the slot's target arrival rate t into the slot.
func (s Slot) Rate(t time.Duration) float64 {
	switch s.Shape {
	case ShapeRamp:
		if s.Duration <= 0 {
			return s.RPS
		}
		frac := float64(t) / float64(s.Duration)
		return s.RPS + (s.ToRPS-s.RPS)*frac
	case ShapeSine:
		period := s.Period
		if period <= 0 {
			period = s.Duration
		}
		return s.RPS + s.Amp*math.Sin(2*math.Pi*float64(t)/float64(period))
	default:
		return s.RPS
	}
}

// maxRate bounds the slot's rate from above (for Poisson thinning).
func (s Slot) maxRate() float64 {
	switch s.Shape {
	case ShapeRamp:
		return math.Max(s.RPS, s.ToRPS)
	case ShapeSine:
		return s.RPS + s.Amp
	default:
		return s.RPS
	}
}

// Tenant is one traffic source sharing the scenario: a workload mix,
// a popularity skew, and an optional yield-size shape. Statement
// streams are per-tenant and seeded independently, so tenants are
// statistically distinct but jointly deterministic.
type Tenant struct {
	Name   string  `json:"name"`
	Weight float64 `json:"weight"`
	// Mix overrides the workload class mix (nil: the profile default).
	Mix *workload.Mix `json:"mix,omitempty"`
	// ZipfS skews the tenant's object popularity (0: default 0.9).
	ZipfS float64 `json:"zipf_s,omitempty"`
	// Size shapes the tenant's yield sizes (nil: unshaped).
	Size *workload.SizeShape `json:"size,omitempty"`
	// Seed offsets the tenant's statement stream; 0 derives one from
	// the scenario seed and the tenant's index.
	Seed int64 `json:"seed,omitempty"`
}

// Scenario is a complete load-shape specification.
type Scenario struct {
	Name string `json:"name"`
	// Release selects the catalog schema ("edr" or "dr1", default edr).
	Release string `json:"release,omitempty"`
	// Seed drives the arrival schedule and, combined with tenant
	// indices, every statement stream. Same seed ⇒ same run.
	Seed int64 `json:"seed"`
	// Arrival is the pacing mode (poisson or uniform, default poisson).
	Arrival string   `json:"arrival,omitempty"`
	Slots   []Slot   `json:"slots"`
	Tenants []Tenant `json:"tenants,omitempty"`
}

// fill applies defaults: a single default tenant, poisson arrivals,
// edr release, slot names.
func (sc *Scenario) fill() {
	if sc.Release == "" {
		sc.Release = "edr"
	}
	if sc.Arrival == "" {
		sc.Arrival = ArrivalPoisson
	}
	if len(sc.Tenants) == 0 {
		sc.Tenants = []Tenant{{Name: "default", Weight: 1}}
	}
	for i := range sc.Slots {
		if sc.Slots[i].Name == "" {
			sc.Slots[i].Name = fmt.Sprintf("slot%d", i)
		}
	}
}

// Windows resolves each slot's absolute [start, end) window, honoring
// explicit Start offsets and packing unpinned slots back to back.
func (sc *Scenario) Windows() ([]time.Duration, []time.Duration) {
	starts := make([]time.Duration, len(sc.Slots))
	ends := make([]time.Duration, len(sc.Slots))
	var cursor time.Duration
	for i, s := range sc.Slots {
		start := cursor
		if s.Start > 0 {
			start = s.Start.D()
		}
		starts[i] = start
		ends[i] = start + s.Duration.D()
		cursor = ends[i]
	}
	return starts, ends
}

// TotalDuration is the end of the last slot window.
func (sc *Scenario) TotalDuration() time.Duration {
	_, ends := sc.Windows()
	var max time.Duration
	for _, e := range ends {
		if e > max {
			max = e
		}
	}
	return max
}

// ExpectedOps integrates the rate curve: the number of arrivals the
// schedule targets in expectation.
func (sc *Scenario) ExpectedOps() float64 {
	var total float64
	for _, s := range sc.Slots {
		switch s.Shape {
		case ShapeRamp:
			total += (s.RPS + s.ToRPS) / 2 * s.Duration.D().Seconds()
		default:
			// The sine's integral over whole periods is the midline;
			// partial periods deviate a little, which is fine for an
			// expectation.
			total += s.RPS * s.Duration.D().Seconds()
		}
	}
	return total
}

// Validate rejects malformed scenarios: no slots, negative rates,
// zero durations, overlapping windows, unknown shapes or arrival
// modes, bad tenants.
func (sc *Scenario) Validate() error {
	if len(sc.Slots) == 0 {
		return fmt.Errorf("synth: scenario %q has no slots", sc.Name)
	}
	switch sc.Arrival {
	case "", ArrivalPoisson, ArrivalUniform:
	default:
		return fmt.Errorf("synth: unknown arrival mode %q (have poisson, uniform)", sc.Arrival)
	}
	switch sc.Release {
	case "", "edr", "dr1":
	default:
		return fmt.Errorf("synth: unknown release %q (have edr, dr1)", sc.Release)
	}
	for i, s := range sc.Slots {
		tag := s.Name
		if tag == "" {
			tag = fmt.Sprintf("slot %d", i)
		}
		switch s.Shape {
		case ShapeConstant, ShapeRamp, ShapeSine:
		default:
			return fmt.Errorf("synth: %s: unknown shape %q (have constant, ramp, sine)", tag, s.Shape)
		}
		if s.Duration <= 0 {
			return fmt.Errorf("synth: %s: duration %v must be positive", tag, s.Duration.D())
		}
		if s.RPS < 0 {
			return fmt.Errorf("synth: %s: rps %v must be ≥ 0", tag, s.RPS)
		}
		if s.Shape == ShapeRamp && s.ToRPS < 0 {
			return fmt.Errorf("synth: %s: to_rps %v must be ≥ 0", tag, s.ToRPS)
		}
		if s.Shape == ShapeSine {
			if s.Amp < 0 {
				return fmt.Errorf("synth: %s: amp %v must be ≥ 0", tag, s.Amp)
			}
			if s.Amp > s.RPS {
				return fmt.Errorf("synth: %s: amp %v exceeds midline %v (rate would go negative)", tag, s.Amp, s.RPS)
			}
			if s.Period < 0 {
				return fmt.Errorf("synth: %s: period %v must be ≥ 0", tag, s.Period.D())
			}
		}
		if s.Start < 0 {
			return fmt.Errorf("synth: %s: start %v must be ≥ 0", tag, s.Start.D())
		}
	}
	starts, ends := sc.Windows()
	for i := 1; i < len(starts); i++ {
		if starts[i] < ends[i-1] {
			return fmt.Errorf("synth: slot %q window [%v, %v) overlaps %q ending at %v",
				sc.Slots[i].Name, starts[i], ends[i], sc.Slots[i-1].Name, ends[i-1])
		}
	}
	if len(sc.Tenants) > 0 {
		var totalW float64
		for i, t := range sc.Tenants {
			if t.Weight < 0 {
				return fmt.Errorf("synth: tenant %q: weight %v must be ≥ 0", t.Name, t.Weight)
			}
			totalW += t.Weight
			if t.ZipfS < 0 {
				return fmt.Errorf("synth: tenant %q: zipf_s %v must be ≥ 0", t.Name, t.ZipfS)
			}
			if err := t.Size.Validate(); err != nil {
				return fmt.Errorf("synth: tenant %q: %w", t.Name, err)
			}
			_ = i
		}
		if totalW <= 0 {
			return fmt.Errorf("synth: tenant weights sum to %v, must be positive", totalW)
		}
	}
	return nil
}

// Scale compresses or stretches the scenario: timeScale divides every
// duration (2 = twice as fast) and rpsScale multiplies every rate.
// Total work scales by rpsScale/timeScale.
func (sc *Scenario) Scale(timeScale, rpsScale float64) {
	if timeScale <= 0 {
		timeScale = 1
	}
	if rpsScale <= 0 {
		rpsScale = 1
	}
	for i := range sc.Slots {
		s := &sc.Slots[i]
		s.Duration = Duration(float64(s.Duration) / timeScale)
		s.Period = Duration(float64(s.Period) / timeScale)
		s.Start = Duration(float64(s.Start) / timeScale)
		s.RPS *= rpsScale
		s.ToRPS *= rpsScale
		s.Amp *= rpsScale
	}
}

// ParseScenario decodes a JSON scenario spec, applies defaults, and
// validates it. Unknown fields are rejected so a typoed knob fails
// loudly instead of silently shaping nothing.
func ParseScenario(data []byte) (*Scenario, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var sc Scenario
	if err := dec.Decode(&sc); err != nil {
		return nil, fmt.Errorf("synth: bad scenario spec: %w", err)
	}
	sc.fill()
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// ParseSlots parses the compact flag grammar for slot lists —
// comma-separated slot terms:
//
//	constant:<rps>x<dur>            e.g. constant:100x30s
//	ramp:<from>..<to>x<dur>         e.g. ramp:50..200x1m
//	sine:<mid>~<amp>x<dur>[/<per>]  e.g. sine:80~60x2m/30s
//
// The grammar covers single-tenant shaping from the command line; the
// JSON spec is the full model.
func ParseSlots(spec string) ([]Slot, error) {
	var slots []Slot
	for _, term := range strings.Split(spec, ",") {
		term = strings.TrimSpace(term)
		if term == "" {
			continue
		}
		shape, rest, ok := strings.Cut(term, ":")
		if !ok {
			return nil, fmt.Errorf("synth: slot %q: want shape:params", term)
		}
		var slot Slot
		slot.Shape = shape
		// Optional sine period suffix.
		if shape == ShapeSine {
			if body, per, found := strings.Cut(rest, "/"); found {
				d, err := time.ParseDuration(per)
				if err != nil {
					return nil, fmt.Errorf("synth: slot %q: bad period: %w", term, err)
				}
				slot.Period = Duration(d)
				rest = body
			}
		}
		rates, durStr, ok := strings.Cut(rest, "x")
		if !ok {
			return nil, fmt.Errorf("synth: slot %q: want <rates>x<duration>", term)
		}
		dur, err := time.ParseDuration(durStr)
		if err != nil {
			return nil, fmt.Errorf("synth: slot %q: bad duration: %w", term, err)
		}
		slot.Duration = Duration(dur)
		switch shape {
		case ShapeConstant:
			v, err := strconv.ParseFloat(rates, 64)
			if err != nil {
				return nil, fmt.Errorf("synth: slot %q: bad rps: %w", term, err)
			}
			slot.RPS = v
		case ShapeRamp:
			from, to, ok := strings.Cut(rates, "..")
			if !ok {
				return nil, fmt.Errorf("synth: slot %q: ramp wants <from>..<to>", term)
			}
			if slot.RPS, err = strconv.ParseFloat(from, 64); err != nil {
				return nil, fmt.Errorf("synth: slot %q: bad from-rps: %w", term, err)
			}
			if slot.ToRPS, err = strconv.ParseFloat(to, 64); err != nil {
				return nil, fmt.Errorf("synth: slot %q: bad to-rps: %w", term, err)
			}
		case ShapeSine:
			mid, amp, ok := strings.Cut(rates, "~")
			if !ok {
				return nil, fmt.Errorf("synth: slot %q: sine wants <mid>~<amp>", term)
			}
			if slot.RPS, err = strconv.ParseFloat(mid, 64); err != nil {
				return nil, fmt.Errorf("synth: slot %q: bad midline: %w", term, err)
			}
			if slot.Amp, err = strconv.ParseFloat(amp, 64); err != nil {
				return nil, fmt.Errorf("synth: slot %q: bad amplitude: %w", term, err)
			}
		default:
			return nil, fmt.Errorf("synth: slot %q: unknown shape %q", term, shape)
		}
		slots = append(slots, slot)
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("synth: empty slot spec %q", spec)
	}
	return slots, nil
}
