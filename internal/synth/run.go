package synth

import (
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bypassyield/internal/obs"
	"bypassyield/internal/wire"
)

// DefaultMaxInflight bounds concurrently outstanding queries (and the
// client connection pool) when the config leaves it zero.
const DefaultMaxInflight = 64

// DefaultDrainTimeout bounds the post-schedule wait for in-flight
// queries to land.
const DefaultDrainTimeout = 30 * time.Second

// DefaultSLO is the latency objective reported when none is set.
const DefaultSLO = 500 * time.Millisecond

// LatencyBuckets is the harness's HDR-style log-bucketed layout:
// ×1.5 steps from 50µs, spanning ~50µs to ~14s in 32 buckets — fine
// enough that p999 lands within ±50% of the true value anywhere in
// the range.
func LatencyBuckets() []int64 { return obs.ExpBuckets(50, 1.5, 32) }

// RunConfig parameterizes a load run against one proxy address.
type RunConfig struct {
	// Addr is the byproxyd client address.
	Addr string
	// MaxInflight caps outstanding queries; arrivals past the cap are
	// shed, never queued (0: DefaultMaxInflight).
	MaxInflight int
	// SLO is the latency objective to report attainment against
	// (0: DefaultSLO).
	SLO time.Duration
	// DialTimeout bounds each connection attempt (0: wire default).
	DialTimeout time.Duration
	// DrainTimeout bounds the post-schedule wait for stragglers
	// (0: DefaultDrainTimeout).
	DrainTimeout time.Duration
	// Dialer overrides connection establishment (tests, chaos
	// wrapping). Nil dials TCP.
	Dialer func(addr string) (net.Conn, error)
	// SkipScrape disables the proxy metrics scrape (for servers that
	// speak only MsgQuery, like test stubs).
	SkipScrape bool
	// Obs optionally receives the harness's own metrics (latency
	// histograms, shed/error counters); nil keeps a private registry.
	Obs *obs.Registry
	// Logf reports run progress; nil is silent.
	Logf func(format string, args ...any)
}

// LatencySummary condenses one latency histogram.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  int64   `json:"p50_us"`
	P90US  int64   `json:"p90_us"`
	P99US  int64   `json:"p99_us"`
	P999US int64   `json:"p999_us"`
	MaxUS  int64   `json:"max_us"`
}

// ClassSummary is per-query-class latency.
type ClassSummary struct {
	Class string `json:"class"`
	Count int64  `json:"count"`
	P50US int64  `json:"p50_us"`
	P99US int64  `json:"p99_us"`
}

// SLOReport is attainment against the configured objective.
type SLOReport struct {
	ThresholdUS int64 `json:"threshold_us"`
	Met         int64 `json:"met"`
	// Attainment is met / completed (1 when nothing completed).
	Attainment float64 `json:"attainment"`
}

// TailCause is one attributed tail cause over the run window, from
// the proxy flight recorder's obs.tail_cause counters.
type TailCause struct {
	Cause string `json:"cause"`
	// Dominant counts exceedances where this cause was the largest
	// attributed slice.
	Dominant int64 `json:"dominant"`
	// TotalUS is the microseconds attributed to this cause across all
	// exceedances.
	TotalUS int64 `json:"total_us"`
}

// TailReport is the proxy flight recorder's view of the run window:
// how many queries it captured by outcome and why the slow ones were
// slow, scraped as before/after counter deltas.
type TailReport struct {
	Slow     int64 `json:"slow"`
	Errors   int64 `json:"errors"`
	Degraded int64 `json:"degraded"`
	Normal   int64 `json:"normal"`
	// Causes is the critical-path attribution, largest TotalUS first.
	Causes []TailCause `json:"causes,omitempty"`
}

// ProxyDelta is the proxy-side byte flow over the run window, by
// decision class, scraped from the proxy's metrics endpoint before
// and after the schedule.
type ProxyDelta struct {
	Queries         int64 `json:"queries"`
	DegradedQueries int64 `json:"degraded_queries"`
	BypassBytes     int64 `json:"bypass_bytes"`
	FetchBytes      int64 `json:"fetch_bytes"`
	CacheBytes      int64 `json:"cache_bytes"`
	YieldBytes      int64 `json:"yield_bytes"`
}

// Report is a completed run's accounting. The open-loop identity
// holds exactly: TargetOps = Dispatched + Shed + Canceled, and
// Dispatched = Completed + Errors + Abandoned.
type Report struct {
	Scenario string `json:"scenario"`
	Release  string `json:"release"`
	Seed     int64  `json:"seed"`
	Arrival  string `json:"arrival"`

	// DurationSeconds is the scheduled window (last slot end);
	// WallSeconds is dispatch start to last completion or drain cutoff.
	DurationSeconds float64 `json:"duration_seconds"`
	WallSeconds     float64 `json:"wall_seconds"`

	TargetOps   int     `json:"target_ops"`
	TargetRPS   float64 `json:"target_rps"`
	Dispatched  int64   `json:"dispatched"`
	Completed   int64   `json:"completed"`
	Errors      int64   `json:"errors"`
	Shed        int64   `json:"shed"`
	Canceled    int64   `json:"canceled,omitempty"`
	Abandoned   int64   `json:"abandoned,omitempty"`
	Degraded    int64   `json:"degraded"`
	AchievedRPS float64 `json:"achieved_rps"`

	BytesDelivered int64 `json:"bytes_delivered"`

	Latency LatencySummary `json:"latency"`
	SLO     SLOReport      `json:"slo"`
	Classes []ClassSummary `json:"classes,omitempty"`
	Proxy   *ProxyDelta    `json:"proxy,omitempty"`
	Tail    *TailReport    `json:"tail,omitempty"`

	// Saturation carries the knee-search trail when the report came
	// from Saturate; the report's own numbers are then the best
	// passing probe's.
	Saturation *SaturationReport `json:"saturation,omitempty"`
}

// Run executes the scenario open-loop against cfg.Addr: the arrival
// schedule and every statement are materialized up front, then a
// dispatcher fires each operation at its appointed offset. Arrivals
// never wait on completions — past the in-flight cap they are shed
// and counted, so a saturated server shows up as achieved < target
// plus a nonzero shed counter, not as a silently stretched run.
//
// Run returns an error only when the run cannot proceed at all (bad
// scenario, context canceled before dispatch). Per-query failures are
// data, reported in Report.Errors — a chaos run that sheds and
// degrades gracefully still exits cleanly.
func Run(ctx context.Context, sc *Scenario, cfg RunConfig) (*Report, error) {
	arrivals, err := Schedule(sc)
	if err != nil {
		return nil, err
	}
	ops, err := Ops(sc, arrivals)
	if err != nil {
		return nil, err
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = DefaultMaxInflight
	}
	if cfg.SLO <= 0 {
		cfg.SLO = DefaultSLO
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = wire.DefaultDialTimeout
	}
	if cfg.Dialer == nil {
		cfg.Dialer = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, cfg.DialTimeout)
		}
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}

	duration := sc.TotalDuration()
	rep := &Report{
		Scenario:        sc.Name,
		Release:         sc.Release,
		Seed:            sc.Seed,
		Arrival:         sc.Arrival,
		DurationSeconds: duration.Seconds(),
		TargetOps:       len(ops),
	}
	if duration > 0 {
		rep.TargetRPS = float64(len(ops)) / duration.Seconds()
	}
	if len(ops) == 0 {
		return rep, nil
	}

	var before obs.Snapshot
	scraped := false
	if !cfg.SkipScrape {
		if s, err := scrape(cfg); err == nil {
			before = s
			scraped = true
		} else {
			logf("synth: proxy metrics scrape disabled: %v", err)
		}
	}

	st := &runState{
		cfg:      cfg,
		sloUS:    cfg.SLO.Microseconds(),
		idle:     make(chan *wire.Client, cfg.MaxInflight),
		latency:  reg.Histogram("synth.latency_us", LatencyBuckets()),
		byClass:  reg.HistogramFamily("synth.class_latency_us", LatencyBuckets()),
		shedCtr:  reg.Counter("synth.shed"),
		errCtr:   reg.Counter("synth.errors"),
		degCtr:   reg.Counter("synth.degraded"),
		doneCtr:  reg.Counter("synth.completed"),
		inflight: reg.Gauge("synth.inflight"),
	}
	defer st.closeIdle()

	logf("synth: %s: %d ops over %v (target %.1f rps, cap %d in flight)",
		sc.Name, len(ops), duration.Round(time.Millisecond), rep.TargetRPS, cfg.MaxInflight)

	// The dispatch clock. Arrivals fire at start+op.At regardless of
	// how the previous ones fared.
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
	var wg sync.WaitGroup
dispatch:
	for i := range ops {
		op := &ops[i]
		if wait := time.Until(start.Add(op.At)); wait > 0 {
			timer.Reset(wait)
			select {
			case <-ctx.Done():
				if !timer.Stop() {
					<-timer.C
				}
				rep.Canceled = int64(len(ops) - i)
				break dispatch
			case <-timer.C:
			}
		} else if ctx.Err() != nil {
			rep.Canceled = int64(len(ops) - i)
			break dispatch
		}
		// Open loop: a full window sheds instead of queueing.
		if !st.tryAcquire(cfg.MaxInflight) {
			st.shed.Add(1)
			st.shedCtr.Inc()
			continue
		}
		st.dispatched.Add(1)
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.exec(op)
		}()
	}
	dispatchEnd := time.Now()

	// Drain stragglers, bounded: an open-loop run must terminate even
	// if the server wedged.
	drained := make(chan struct{})
	go func() { wg.Wait(); close(drained) }()
	select {
	case <-drained:
	case <-time.After(cfg.DrainTimeout):
		logf("synth: drain timeout: %d queries still in flight", st.cur.Load())
	}

	rep.WallSeconds = time.Since(start).Seconds()
	rep.Dispatched = st.dispatched.Load()
	rep.Completed = st.completed.Load()
	rep.Errors = st.errors.Load()
	rep.Shed = st.shed.Load()
	rep.Degraded = st.degraded.Load()
	rep.Abandoned = rep.Dispatched - rep.Completed - rep.Errors
	rep.BytesDelivered = st.bytes.Load()
	window := duration.Seconds()
	if w := dispatchEnd.Sub(start).Seconds(); w > window {
		window = w
	}
	if window > 0 {
		rep.AchievedRPS = float64(rep.Completed) / window
	}

	lat := st.latency.Snap()
	rep.Latency = LatencySummary{
		Count:  lat.Count,
		MeanUS: lat.Mean(),
		P50US:  lat.Quantile(0.50),
		P90US:  lat.Quantile(0.90),
		P99US:  lat.Quantile(0.99),
		P999US: lat.Quantile(0.999),
		MaxUS:  st.maxUS.Load(),
	}
	rep.SLO = SLOReport{ThresholdUS: st.sloUS, Met: st.sloMet.Load(), Attainment: 1}
	if rep.Completed > 0 {
		rep.SLO.Attainment = float64(rep.SLO.Met) / float64(rep.Completed)
	}
	for _, h := range reg.Snapshot().Histograms {
		if h.Name != "synth.class_latency_us" || h.Count == 0 {
			continue
		}
		rep.Classes = append(rep.Classes, ClassSummary{
			Class: h.Label,
			Count: h.Count,
			P50US: h.Quantile(0.50),
			P99US: h.Quantile(0.99),
		})
	}

	if scraped {
		if after, err := scrape(cfg); err == nil {
			rep.Proxy = &ProxyDelta{
				Queries:         after.CounterValue("federation.queries", "") - before.CounterValue("federation.queries", ""),
				DegradedQueries: after.CounterValue("core.degraded_queries", "") - before.CounterValue("core.degraded_queries", ""),
				BypassBytes:     after.CounterValue("core.bypass_bytes", "") - before.CounterValue("core.bypass_bytes", ""),
				FetchBytes:      after.CounterValue("core.fetch_bytes", "") - before.CounterValue("core.fetch_bytes", ""),
				CacheBytes:      after.CounterValue("core.cache_bytes", "") - before.CounterValue("core.cache_bytes", ""),
				YieldBytes:      after.CounterValue("core.yield_bytes", "") - before.CounterValue("core.yield_bytes", ""),
			}
			rep.Tail = tailDelta(before, after)
		}
	}
	return rep, nil
}

// tailDelta condenses the proxy flight recorder's counters over the
// run window. Nil when the window captured nothing (recorder absent
// or all queries healthy and unsampled).
func tailDelta(before, after obs.Snapshot) *TailReport {
	t := &TailReport{
		Slow:     after.CounterValue("obs.exemplars", "slow") - before.CounterValue("obs.exemplars", "slow"),
		Errors:   after.CounterValue("obs.exemplars", "error") - before.CounterValue("obs.exemplars", "error"),
		Degraded: after.CounterValue("obs.exemplars", "degraded") - before.CounterValue("obs.exemplars", "degraded"),
		Normal:   after.CounterValue("obs.exemplars", "normal") - before.CounterValue("obs.exemplars", "normal"),
	}
	causes := map[string]*TailCause{}
	for _, c := range after.Counters {
		if c.Name != "obs.tail_cause" && c.Name != "obs.tail_cause_us" {
			continue
		}
		tc := causes[c.Label]
		if tc == nil {
			tc = &TailCause{Cause: c.Label}
			causes[c.Label] = tc
		}
		if c.Name == "obs.tail_cause" {
			tc.Dominant = c.Value - before.CounterValue(c.Name, c.Label)
		} else {
			tc.TotalUS = c.Value - before.CounterValue(c.Name, c.Label)
		}
	}
	for _, tc := range causes {
		if tc.Dominant != 0 || tc.TotalUS != 0 {
			t.Causes = append(t.Causes, *tc)
		}
	}
	sort.Slice(t.Causes, func(i, j int) bool {
		if t.Causes[i].TotalUS != t.Causes[j].TotalUS {
			return t.Causes[i].TotalUS > t.Causes[j].TotalUS
		}
		return t.Causes[i].Cause < t.Causes[j].Cause
	})
	if t.Slow+t.Errors+t.Degraded+t.Normal == 0 && len(t.Causes) == 0 {
		return nil
	}
	return t
}

// runState is the shared mutable state of one run.
type runState struct {
	cfg   RunConfig
	sloUS int64

	cur        atomic.Int64 // outstanding queries
	dispatched atomic.Int64
	completed  atomic.Int64
	errors     atomic.Int64
	shed       atomic.Int64
	degraded   atomic.Int64
	bytes      atomic.Int64
	sloMet     atomic.Int64
	maxUS      atomic.Int64

	idle chan *wire.Client

	latency  *obs.Histogram
	byClass  *obs.HistogramFamily
	shedCtr  *obs.Counter
	errCtr   *obs.Counter
	degCtr   *obs.Counter
	doneCtr  *obs.Counter
	inflight *obs.Gauge
}

// tryAcquire claims an in-flight slot without blocking.
func (st *runState) tryAcquire(cap int) bool {
	for {
		n := st.cur.Load()
		if n >= int64(cap) {
			return false
		}
		if st.cur.CompareAndSwap(n, n+1) {
			st.inflight.Set(n + 1)
			return true
		}
	}
}

func (st *runState) release() {
	st.inflight.Set(st.cur.Add(-1))
}

// exec runs one operation on a pooled connection. Connection failures
// and query errors count as Errors; the conn is discarded (its stream
// state is unknown) and a successor dials fresh.
func (st *runState) exec(op *Op) {
	defer st.release()
	var cl *wire.Client
	select {
	case cl = <-st.idle:
	default:
		conn, err := st.cfg.Dialer(st.cfg.Addr)
		if err != nil {
			st.errors.Add(1)
			st.errCtr.Inc()
			return
		}
		cl = wire.NewClient(conn)
	}
	// Mint a correlation id per operation: the proxy propagates it to
	// node legs and stamps it on flight-recorder exemplars, so a tail
	// event in this run can be joined across daemons afterwards
	// (byinspect -federation merges by trace id).
	tctx := obs.TraceContext{TraceID: obs.NewID(), SpanID: obs.NewID()}
	t0 := time.Now()
	res, err := cl.QueryTraced(op.SQL, tctx)
	latUS := time.Since(t0).Microseconds()
	if err != nil {
		st.errors.Add(1)
		st.errCtr.Inc()
		cl.Close()
		return
	}
	st.completed.Add(1)
	st.doneCtr.Inc()
	st.latency.Observe(latUS)
	st.byClass.Observe(op.Class, latUS)
	if latUS <= st.sloUS {
		st.sloMet.Add(1)
	}
	for {
		old := st.maxUS.Load()
		if latUS <= old || st.maxUS.CompareAndSwap(old, latUS) {
			break
		}
	}
	if res.Partial || len(res.TransportErrors) > 0 {
		st.degraded.Add(1)
		st.degCtr.Inc()
	}
	st.bytes.Add(res.Bytes)
	select {
	case st.idle <- cl:
	default:
		cl.Close()
	}
}

func (st *runState) closeIdle() {
	for {
		select {
		case cl := <-st.idle:
			cl.Close()
		default:
			return
		}
	}
}

// scrape fetches the proxy's metrics snapshot on a throwaway conn.
func scrape(cfg RunConfig) (obs.Snapshot, error) {
	conn, err := cfg.Dialer(cfg.Addr)
	if err != nil {
		return obs.Snapshot{}, err
	}
	cl := wire.NewClient(conn)
	defer cl.Close()
	m, err := cl.Metrics()
	if err != nil {
		return obs.Snapshot{}, err
	}
	return m.Snapshot, nil
}

// WriteText renders the report as a human table.
func (r *Report) WriteText(w io.Writer) error {
	ms := func(us int64) float64 { return float64(us) / 1e3 }
	fmt.Fprintf(w, "scenario %s (release %s, seed %d, %s arrivals)\n",
		r.Scenario, r.Release, r.Seed, r.Arrival)
	fmt.Fprintf(w, "  window      %8.1fs scheduled, %.1fs wall\n", r.DurationSeconds, r.WallSeconds)
	fmt.Fprintf(w, "  rps         %8.1f target  → %8.1f achieved\n", r.TargetRPS, r.AchievedRPS)
	fmt.Fprintf(w, "  ops         %8d target: %d completed, %d errors, %d shed",
		r.TargetOps, r.Completed, r.Errors, r.Shed)
	if r.Canceled > 0 {
		fmt.Fprintf(w, ", %d canceled", r.Canceled)
	}
	if r.Abandoned > 0 {
		fmt.Fprintf(w, ", %d abandoned", r.Abandoned)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  degraded    %8d partial results\n", r.Degraded)
	fmt.Fprintf(w, "  delivered   %11.3f MB\n", float64(r.BytesDelivered)/1e6)
	fmt.Fprintf(w, "  latency     p50 %.2fms  p90 %.2fms  p99 %.2fms  p999 %.2fms  max %.2fms\n",
		ms(r.Latency.P50US), ms(r.Latency.P90US), ms(r.Latency.P99US),
		ms(r.Latency.P999US), ms(r.Latency.MaxUS))
	fmt.Fprintf(w, "  slo         %.0fms: %.2f%% attained (%d/%d)\n",
		ms(r.SLO.ThresholdUS), r.SLO.Attainment*100, r.SLO.Met, r.Completed)
	if len(r.Classes) > 0 {
		fmt.Fprintln(w, "  per class:")
		for _, c := range r.Classes {
			fmt.Fprintf(w, "    %-10s %7d ops  p50 %8.2fms  p99 %8.2fms\n",
				c.Class, c.Count, ms(c.P50US), ms(c.P99US))
		}
	}
	if r.Proxy != nil {
		fmt.Fprintf(w, "  proxy       %d queries (%d degraded)\n", r.Proxy.Queries, r.Proxy.DegradedQueries)
		fmt.Fprintf(w, "  proxy bytes bypass %.3f MB, fetch %.3f MB, cache-hit %.3f MB, yield %.3f MB\n",
			float64(r.Proxy.BypassBytes)/1e6, float64(r.Proxy.FetchBytes)/1e6,
			float64(r.Proxy.CacheBytes)/1e6, float64(r.Proxy.YieldBytes)/1e6)
	}
	if r.Tail != nil {
		fmt.Fprintf(w, "  tail        %d slow, %d error, %d degraded exemplars (%d normal samples)\n",
			r.Tail.Slow, r.Tail.Errors, r.Tail.Degraded, r.Tail.Normal)
		for _, c := range r.Tail.Causes {
			fmt.Fprintf(w, "    %-26s %6d dominant  %10.3fms attributed\n",
				c.Cause, c.Dominant, float64(c.TotalUS)/1e3)
		}
	}
	if s := r.Saturation; s != nil {
		bound := ""
		if s.Bounded {
			bound = " (search cap — true knee is higher)"
		}
		fmt.Fprintf(w, "  saturation  knee %.0f rps under the %.0fms objective%s, %d probes:\n",
			s.KneeRPS, float64(s.ThresholdUS)/1e3, bound, len(s.Probes))
		for _, p := range s.Probes {
			verdict := "fail"
			if p.Pass {
				verdict = "pass"
			}
			fmt.Fprintf(w, "    %8.0f rps → %8.1f achieved  p99 %8.2fms  attained %6.2f%%  shed %d  %s\n",
				p.TargetRPS, p.AchievedRPS, ms(p.P99US), p.Attainment*100, p.Shed, verdict)
		}
	}
	return nil
}
