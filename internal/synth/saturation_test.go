package synth

import (
	"context"
	"strings"
	"testing"
	"time"

	"bypassyield/internal/wire"
)

// TestSaturateFindsKnee drives the knee search against a stub whose
// capacity is bounded by service time × in-flight slots: ~10ms per
// query with 2 slots caps throughput near 200 rps. The search must
// bracket that — a positive knee strictly inside the search range —
// and leave a consistent probe trail.
func TestSaturateFindsKnee(t *testing.T) {
	addr := stubServer(t, 10*time.Millisecond, wire.ResultMsg{Columns: []string{"x"}, Rows: 1, Bytes: 100})
	rep, err := Saturate(context.Background(), SaturationConfig{
		Run: RunConfig{
			Addr:         addr,
			MaxInflight:  2,
			SkipScrape:   true,
			DrainTimeout: 5 * time.Second,
		},
		Base:          &Scenario{Name: "sat-test", Seed: 9, Arrival: ArrivalUniform},
		LowRPS:        25,
		MaxRPS:        1600,
		ProbeDuration: 500 * time.Millisecond,
		Bisections:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	sat := rep.Saturation
	if sat == nil {
		t.Fatal("report carries no saturation trail")
	}
	if sat.KneeRPS <= 0 {
		t.Fatalf("knee = %.0f, want > 0 (capacity ≈ 200 rps)", sat.KneeRPS)
	}
	if sat.Bounded || sat.KneeRPS >= 1600 {
		t.Fatalf("knee %.0f hit the search cap; the stub saturates near 200 rps", sat.KneeRPS)
	}
	if rep.Scenario != "saturation" {
		t.Fatalf("report scenario = %q", rep.Scenario)
	}
	// The report's own numbers are the best passing probe's (its
	// realized target rate quantizes to whole arrivals, so compare
	// loosely).
	if rep.TargetRPS < sat.KneeRPS*0.9 || rep.TargetRPS > sat.KneeRPS*1.1 {
		t.Fatalf("report target %.1f rps, want ≈ the knee probe's %.1f", rep.TargetRPS, sat.KneeRPS)
	}
	// Trail consistency: the first probe passes (the floor is sustainable),
	// at least one fails (the search bracketed), every passing probe
	// respects the pass criterion, and no passing probe beats the knee.
	if len(sat.Probes) < 2 || !sat.Probes[0].Pass {
		t.Fatalf("probe trail: %+v", sat.Probes)
	}
	sawFail := false
	for _, p := range sat.Probes {
		if !p.Pass {
			sawFail = true
			continue
		}
		if p.P99US > sat.ThresholdUS {
			t.Fatalf("passing probe over the objective: %+v", p)
		}
		if p.TargetRPS > sat.KneeRPS {
			t.Fatalf("passing probe at %.0f rps above knee %.0f", p.TargetRPS, sat.KneeRPS)
		}
	}
	if !sawFail {
		t.Fatalf("no failing probe in the trail: %+v", sat.Probes)
	}
	var sb strings.Builder
	if err := rep.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "saturation  knee") {
		t.Fatalf("text report missing the saturation section:\n%s", sb.String())
	}
}

// TestSaturateAllFail: with an unmeetable objective even the floor
// probe fails; the knee is 0 and the failing probe's evidence is
// still the top-level report.
func TestSaturateAllFail(t *testing.T) {
	addr := stubServer(t, 5*time.Millisecond, wire.ResultMsg{Rows: 1, Bytes: 10})
	rep, err := Saturate(context.Background(), SaturationConfig{
		Run: RunConfig{
			Addr:       addr,
			SLO:        time.Microsecond, // nothing real answers in 1µs
			SkipScrape: true,
		},
		Base:          &Scenario{Name: "sat-fail", Seed: 11, Arrival: ArrivalUniform},
		LowRPS:        20,
		ProbeDuration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Saturation.KneeRPS != 0 {
		t.Fatalf("knee = %.0f, want 0 under a 1µs objective", rep.Saturation.KneeRPS)
	}
	if len(rep.Saturation.Probes) != 1 || rep.Saturation.Probes[0].Pass {
		t.Fatalf("probes = %+v, want one failing floor probe", rep.Saturation.Probes)
	}
	if rep.Completed == 0 {
		t.Fatal("failing probe's evidence missing from the report")
	}
}

// TestSaturateBounded: when the expansion cap itself passes, the
// search reports the cap as the knee and flags it Bounded.
func TestSaturateBounded(t *testing.T) {
	addr := stubServer(t, 0, wire.ResultMsg{Rows: 1, Bytes: 10})
	rep, err := Saturate(context.Background(), SaturationConfig{
		Run:           RunConfig{Addr: addr, SkipScrape: true},
		Base:          &Scenario{Name: "sat-cap", Seed: 13, Arrival: ArrivalUniform},
		LowRPS:        40,
		MaxRPS:        40,
		ProbeDuration: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	sat := rep.Saturation
	if !sat.Bounded || sat.KneeRPS != 40 {
		t.Fatalf("bounded search: knee %.0f bounded=%v, want 40/true", sat.KneeRPS, sat.Bounded)
	}
	if len(sat.Probes) != 1 {
		t.Fatalf("probes = %+v, want exactly the cap probe", sat.Probes)
	}
}
