package catalog

import "testing"

func TestTypeWidths(t *testing.T) {
	cases := []struct {
		typ  Type
		want int64
	}{{Int64, 8}, {Int32, 4}, {Int16, 2}, {Float64, 8}, {Float32, 4}}
	for _, tc := range cases {
		if got := tc.typ.Width(); got != tc.want {
			t.Fatalf("%v.Width() = %d, want %d", tc.typ, got, tc.want)
		}
	}
	if Type(200).Width() != 0 {
		t.Fatal("invalid type must have zero width")
	}
}

func TestTypeStrings(t *testing.T) {
	if Int64.String() != "bigint" || Float32.String() != "real" {
		t.Fatal("type names wrong")
	}
}

func TestTableLookupCaseInsensitive(t *testing.T) {
	s := EDR()
	if s.Table("PhotoObj") == nil {
		t.Fatal("case-insensitive table lookup failed")
	}
	if s.Table("nope") != nil {
		t.Fatal("lookup of absent table should be nil")
	}
	po := s.Table("photoobj")
	if po.Column("ModelMag_G") == nil {
		t.Fatal("case-insensitive column lookup failed")
	}
	if po.Column("nope") != nil {
		t.Fatal("lookup of absent column should be nil")
	}
}

func TestRowWidth(t *testing.T) {
	tab := Table{Name: "t", Columns: []Column{
		{Name: "a", Type: Int64},
		{Name: "b", Type: Float32},
		{Name: "c", Type: Int16},
	}, Rows: 10, Site: "s"}
	if got := tab.RowWidth(); got != 14 {
		t.Fatalf("RowWidth = %d, want 14", got)
	}
	if got := tab.Bytes(); got != 140 {
		t.Fatalf("Bytes = %d, want 140", got)
	}
}

func TestReleasesValidate(t *testing.T) {
	for _, s := range []*Schema{EDR(), DR1()} {
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
	}
}

func TestReleaseSizes(t *testing.T) {
	// The paper reports its experimental data at about 700 MB; EDR
	// should land near that and DR1 roughly 2.3× bigger.
	edr := EDR().TotalBytes()
	dr1 := DR1().TotalBytes()
	if edr < 600<<20 || edr > 850<<20 {
		t.Fatalf("EDR size = %d MB, want ≈ 700 MB", edr>>20)
	}
	if dr1 < int64(2)*edr || dr1 > 3*edr {
		t.Fatalf("DR1 size = %d MB, want ≈ 2-3× EDR (%d MB)", dr1>>20, edr>>20)
	}
}

func TestHotSetFraction(t *testing.T) {
	// The hot working set (photoobj + specobj + field) must be 20–35%
	// of the release: the paper finds bypass caches become effective
	// at 20–30% of the database, which requires exactly this split
	// between hot science tables and cold survey metadata.
	for _, s := range []*Schema{EDR(), DR1()} {
		var hot int64
		for _, n := range []string{"photoobj", "specobj", "field"} {
			hot += s.Table(n).Bytes()
		}
		frac := float64(hot) / float64(s.TotalBytes())
		if frac < 0.20 || frac > 0.35 {
			t.Fatalf("%s: hot set is %.1f%% of the release, want 20-35%%", s.Name, frac*100)
		}
	}
}

func TestPhotoObjIsLargestHotTable(t *testing.T) {
	s := EDR()
	if s.Table("photoobj").Bytes() <= s.Table("specobj").Bytes() {
		t.Fatal("photoobj should dwarf specobj")
	}
}

func TestKeyColumns(t *testing.T) {
	s := EDR()
	if k := s.Table("photoobj").KeyColumn(); k == nil || k.Name != "objid" {
		t.Fatalf("photoobj key = %v, want objid", k)
	}
	if k := s.Table("neighbors").KeyColumn(); k != nil {
		t.Fatalf("neighbors should have no key, got %v", k)
	}
}

func TestSpecObjReferencesPhotoObj(t *testing.T) {
	s := EDR()
	po := s.Table("photoobj")
	so := s.Table("specobj")
	c := so.Column("objid")
	if c == nil {
		t.Fatal("specobj.objid missing")
	}
	if c.Max != float64(po.Rows) {
		t.Fatalf("specobj.objid range max = %v, want photoobj rows %d", c.Max, po.Rows)
	}
	if po.Rows <= so.Rows*5 {
		t.Fatal("photoobj should have far more rows than specobj")
	}
}

func TestSitesAssigned(t *testing.T) {
	s := EDR()
	sites := make(map[string]int)
	for i := range s.Tables {
		sites[s.Tables[i].Site]++
	}
	if len(sites) < 3 {
		t.Fatalf("tables spread over %d sites, want ≥ 3 (federation)", len(sites))
	}
}

func TestValidateCatchesErrors(t *testing.T) {
	mk := func(mut func(*Schema)) *Schema {
		s := &Schema{Name: "x", Tables: []Table{{
			Name: "t", Rows: 1, Site: "s",
			Columns: []Column{{Name: "a", Type: Int64}},
		}}}
		mut(s)
		return s
	}
	cases := []struct {
		name string
		mut  func(*Schema)
	}{
		{"empty schema name", func(s *Schema) { s.Name = "" }},
		{"empty table name", func(s *Schema) { s.Tables[0].Name = "" }},
		{"zero rows", func(s *Schema) { s.Tables[0].Rows = 0 }},
		{"no site", func(s *Schema) { s.Tables[0].Site = "" }},
		{"no columns", func(s *Schema) { s.Tables[0].Columns = nil }},
		{"dup table", func(s *Schema) { s.Tables = append(s.Tables, s.Tables[0]) }},
		{"dup column", func(s *Schema) {
			s.Tables[0].Columns = append(s.Tables[0].Columns, s.Tables[0].Columns[0])
		}},
		{"bad range", func(s *Schema) { s.Tables[0].Columns[0].Min = 5; s.Tables[0].Columns[0].Max = 1 }},
		{"two keys", func(s *Schema) {
			s.Tables[0].Columns = append(s.Tables[0].Columns,
				Column{Name: "k1", Type: Int64, Key: true},
				Column{Name: "k2", Type: Int64, Key: true})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := mk(tc.mut).Validate(); err == nil {
				t.Fatal("Validate should have failed")
			}
		})
	}
	if err := mk(func(*Schema) {}).Validate(); err != nil {
		t.Fatalf("baseline schema should validate: %v", err)
	}
}

func TestSiteSchema(t *testing.T) {
	s := EDR()
	sub := SiteSchema(s, SiteSpec)
	if sub.Name != s.Name {
		t.Fatalf("subset name = %q, want %q", sub.Name, s.Name)
	}
	if len(sub.Tables) == 0 {
		t.Fatal("spec site owns tables")
	}
	for i := range sub.Tables {
		if sub.Tables[i].Site != SiteSpec {
			t.Fatalf("foreign table %s in subset", sub.Tables[i].Name)
		}
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	if SiteSchema(s, "nowhere").Tables != nil {
		t.Fatal("unknown site should yield empty subset")
	}
}

func TestSites(t *testing.T) {
	got := Sites(EDR())
	want := []string{SiteMeta, SitePhoto, SiteSpec}
	if len(got) != 3 {
		t.Fatalf("sites = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sites = %v, want %v (sorted)", got, want)
		}
	}
}
