package catalog

// SDSS-like data releases. The paper's evaluation uses traces from two
// releases of the largest SkyQuery federating node: EDR (Early Data
// Release) and DR1 (Data Release 1). The real archives are not
// redistributable, so these schemas reproduce the structure the paper
// relies on — a photometric giant (photoobj), a much smaller
// spectroscopic table (specobj), and several auxiliary relations —
// with logical sizes around the ~700 MB figure the paper reports for
// its experimental data, DR1 scaled up roughly 2.3×.
//
// Column value ranges follow the astronomy: ra ∈ [0,360), dec ∈
// [-90,90], magnitudes ∈ [12,28], redshift z ∈ [0,6].

const (
	// SitePhoto serves the photometric tables.
	SitePhoto = "photo.sdss.org"
	// SiteSpec serves the spectroscopic tables.
	SiteSpec = "spec.sdss.org"
	// SiteMeta serves survey metadata (fields, frames, plates).
	SiteMeta = "meta.sdss.org"
)

func key(name string, max float64) Column {
	return Column{Name: name, Type: Int64, Min: 0, Max: max, Key: true}
}

func i64(name string, min, max float64) Column {
	return Column{Name: name, Type: Int64, Min: min, Max: max}
}

func i32(name string, min, max float64) Column {
	return Column{Name: name, Type: Int32, Min: min, Max: max}
}

func i16(name string, min, max float64) Column {
	return Column{Name: name, Type: Int16, Min: min, Max: max}
}

func f64(name string, min, max float64) Column {
	return Column{Name: name, Type: Float64, Min: min, Max: max}
}

func f32(name string, min, max float64) Column {
	return Column{Name: name, Type: Float32, Min: min, Max: max}
}

// fiveBand appends the SDSS u,g,r,i,z band variants of a column.
func fiveBand(cols []Column, prefix string, min, max float64) []Column {
	for _, band := range []string{"u", "g", "r", "i", "z"} {
		cols = append(cols, f32(prefix+"_"+band, min, max))
	}
	return cols
}

// maskColumns builds the imaging-mask table: bulk survey metadata
// that science queries rarely touch.
func maskColumns(rows int64) []Column {
	return []Column{
		key("maskid", float64(rows)),
		f64("ra", 0, 360),
		f64("dec", -90, 90),
		f32("radius", 0, 2),
		i16("type", 0, 6),
		i32("area", 0, 1<<20),
	}
}

// chunkColumns builds the survey-chunk table: load-tracking metadata,
// again rarely queried.
func chunkColumns(rows int64) []Column {
	return []Column{
		key("chunkid", float64(rows)),
		i32("stripe", 0, 90),
		f64("ramin", 0, 360),
		f64("ramax", 0, 360),
		i32("seglist", 0, 1<<16),
		i64("exportid", 0, 1<<40),
		f32("lambda", -90, 90),
	}
}

// photoObjColumns builds the photometric table's attribute list
// (44 columns, 196 bytes per row).
func photoObjColumns(rows int64) []Column {
	cols := []Column{
		key("objid", float64(rows)),
		f64("ra", 0, 360),
		f64("dec", -90, 90),
		i64("htmid", 0, 1<<44),
		i32("run", 0, 8000),
		i32("rerun", 0, 50),
		i32("camcol", 1, 6),
		i32("field", 0, 1000),
		i16("type", 3, 6),
		i16("mode", 0, 3),
		i64("flags", 0, 1<<60),
		f32("rowc", 0, 1500),
		f32("colc", 0, 2000),
		f32("petrorad_r", 0, 60),
		f32("petror50_r", 0, 30),
		i32("status", 0, 1<<20),
	}
	cols = fiveBand(cols, "psfmag", 12, 28)
	cols = fiveBand(cols, "psfmagerr", 0, 2)
	cols = fiveBand(cols, "modelmag", 12, 28)
	cols = fiveBand(cols, "modelmagerr", 0, 2)
	cols = fiveBand(cols, "petromag", 12, 28)
	cols = append(cols, f32("extinction_r", 0, 2), f32("extinction_g", 0, 2), f32("dered_r", 12, 28))
	return cols
}

// specObjColumns builds the spectroscopic table's attribute list.
func specObjColumns(rows, photoRows int64) []Column {
	return []Column{
		key("specobjid", float64(rows)),
		// objid references photoobj: every spectrum has a photometric
		// counterpart, which makes photoobj ⋈ specobj a key join.
		i64("objid", 0, float64(photoRows)),
		f64("ra", 0, 360),
		f64("dec", -90, 90),
		f32("z", 0, 6),
		f32("zerr", 0, 0.1),
		f32("zconf", 0, 1),
		i16("specclass", 0, 6),
		i16("zstatus", 0, 12),
		i32("plate", 0, 3000),
		i32("mjd", 51000, 54000),
		i32("fiberid", 1, 640),
		f32("veldisp", 0, 500),
		f32("sn_0", 0, 100),
		f32("sn_1", 0, 100),
		f32("eclass", -1, 1),
		f32("ecoeff_0", -100, 100),
		f32("ecoeff_1", -100, 100),
	}
}

// neighborsColumns builds the pair-matching table.
func neighborsColumns(photoRows int64) []Column {
	return []Column{
		i64("objid", 0, float64(photoRows)),
		i64("neighborobjid", 0, float64(photoRows)),
		f32("distance", 0, 0.05),
		i16("neighbortype", 0, 9),
		i16("neighbormode", 0, 3),
	}
}

// fieldColumns builds the imaging-field metadata table.
func fieldColumns(rows int64) []Column {
	cols := []Column{
		key("fieldid", float64(rows)),
		i32("run", 0, 8000),
		i32("camcol", 1, 6),
		i32("field", 0, 1000),
		f64("ra", 0, 360),
		f64("dec", -90, 90),
		i32("nobjects", 0, 3000),
		i32("nstars", 0, 2000),
		i32("ngalaxy", 0, 2000),
		f32("quality", 0, 5),
	}
	cols = fiveBand(cols, "sky", 18, 23)
	cols = fiveBand(cols, "skyerr", 0, 1)
	cols = fiveBand(cols, "airmass", 1, 2)
	return cols
}

// frameColumns builds the imaging-frame table. Frames carry the bulk
// astrometric calibration payload (in SDSS they also reference the
// JPEG mosaics), so rows are wide and the table is one of the big,
// cold objects of the release.
func frameColumns(rows int64) []Column {
	cols := []Column{
		key("frameid", float64(rows)),
		i32("fieldid", 0, 1<<20),
		i16("zoom", 0, 10),
		f64("ra", 0, 360),
		f64("dec", -90, 90),
		f32("a", -1, 1), f32("b", -1, 1), f32("c", -1, 1),
		f32("d", -1, 1), f32("e", -1, 1), f32("f", -1, 1),
		f32("mu", 0, 360),
		f32("nu", -90, 90),
	}
	// Per-band calibration vectors (astrom/photom coefficients).
	for _, band := range []string{"u", "g", "r", "i", "z"} {
		for i := 0; i < 12; i++ {
			cols = append(cols, f32(fmtCoeff(band, i), -1000, 1000))
		}
	}
	return cols
}

func fmtCoeff(band string, i int) string {
	return "cal_" + band + "_" + string(rune('a'+i))
}

// specLineColumns builds the emission/absorption line table.
func specLineColumns(rows, specRows int64) []Column {
	return []Column{
		key("speclineid", float64(rows)),
		i64("specobjid", 0, float64(specRows)),
		f32("wave", 3800, 9200),
		f32("waveerr", 0, 5),
		f32("sigma", 0, 100),
		f32("height", 0, 1000),
		f32("ew", -100, 100),
		f32("continuum", 0, 1000),
		i32("lineid", 0, 60),
	}
}

// plateColumns builds the spectroscopic plate table.
func plateColumns(rows int64) []Column {
	cols := []Column{
		key("plateid", float64(rows)),
		i32("plate", 0, 3000),
		i32("mjd", 51000, 54000),
		f64("ra", 0, 360),
		f64("dec", -90, 90),
		i32("nexposures", 1, 20),
		f32("seeing", 0.5, 3),
	}
	cols = fiveBand(cols, "platesn", 0, 100)
	return cols
}

// buildRelease assembles a release given the photometric row count;
// the auxiliary tables scale proportionally.
//
// The proportions matter to the paper's results: the hot working set
// (photoobj + specobj + field, the tables science queries hammer) is
// 25–30% of the release, while the remaining bytes sit in big, cold
// survey-metadata tables (frame, mask, chunk, neighbors, specline)
// that attract only scattered, low-yield queries. Bypass caches become
// effective once they can hold the hot set — the paper's "20% to 30%
// of the database" — and in-line caches are poisoned by the cold
// tables, which they must load whole for tiny results.
func buildRelease(name string, photoRows int64) *Schema {
	specRows := photoRows / 8
	neighborRows := photoRows * 5 / 2
	fieldRows := photoRows / 20
	frameRows := photoRows * 7 / 8
	lineRows := specRows * 6
	maskRows := photoRows * 7 / 2
	chunkRows := photoRows * 3 / 2
	plateRows := specRows / 90
	if plateRows < 100 {
		plateRows = 100
	}
	return &Schema{
		Name: name,
		Tables: []Table{
			{Name: "photoobj", Columns: photoObjColumns(photoRows), Rows: photoRows, Site: SitePhoto},
			{Name: "specobj", Columns: specObjColumns(specRows, photoRows), Rows: specRows, Site: SiteSpec},
			{Name: "neighbors", Columns: neighborsColumns(photoRows), Rows: neighborRows, Site: SitePhoto},
			{Name: "field", Columns: fieldColumns(fieldRows), Rows: fieldRows, Site: SiteMeta},
			{Name: "frame", Columns: frameColumns(frameRows), Rows: frameRows, Site: SiteMeta},
			{Name: "specline", Columns: specLineColumns(lineRows, specRows), Rows: lineRows, Site: SiteSpec},
			{Name: "platex", Columns: plateColumns(plateRows), Rows: plateRows, Site: SiteSpec},
			{Name: "mask", Columns: maskColumns(maskRows), Rows: maskRows, Site: SiteMeta},
			{Name: "chunk", Columns: chunkColumns(chunkRows), Rows: chunkRows, Site: SiteMeta},
		},
	}
}

// EDR returns the Early Data Release schema (~700 MB logical).
func EDR() *Schema { return buildRelease("edr", 880_000) }

// DR1 returns the Data Release 1 schema (~1.6 GB logical).
func DR1() *Schema { return buildRelease("dr1", 2_000_000) }
