// Package catalog defines the federation's schema metadata: tables,
// typed columns with byte widths, logical row counts, and site
// placement, modeled on the Sloan Digital Sky Survey schema used by
// the paper's SkyQuery evaluation.
//
// The catalog carries two kinds of size information. Logical sizes
// (Rows × row width) drive all cache economics — object sizes, fetch
// costs, and yields are computed at logical scale, exactly as the
// paper accounts network traffic. The engine package materializes a
// sampled fraction of the rows for actual execution; sampling never
// distorts the byte accounting because yields are scaled back to
// logical size.
package catalog

import (
	"fmt"
	"sort"
	"strings"
)

// Type is a column's value type.
type Type uint8

const (
	// Int64 is an 8-byte integer (SDSS bigint: objID, specObjID, ...).
	Int64 Type = iota
	// Int32 is a 4-byte integer.
	Int32
	// Int16 is a 2-byte integer.
	Int16
	// Float64 is an 8-byte float (SDSS float: ra, dec, ...).
	Float64
	// Float32 is a 4-byte float (SDSS real: magnitudes, errors, ...).
	Float32
)

// Width returns the storage width of the type in bytes.
func (t Type) Width() int64 {
	switch t {
	case Int64, Float64:
		return 8
	case Int32, Float32:
		return 4
	case Int16:
		return 2
	default:
		return 0
	}
}

// String returns the SQL-ish name of the type.
func (t Type) String() string {
	switch t {
	case Int64:
		return "bigint"
	case Int32:
		return "int"
	case Int16:
		return "smallint"
	case Float64:
		return "float"
	case Float32:
		return "real"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// Column describes one attribute: its type and the value range used
// both to synthesize data and to estimate predicate selectivity
// (values are uniform over [Min, Max] unless Key is set).
type Column struct {
	// Name is the column name, lower-case.
	Name string
	// Type determines the storage width.
	Type Type
	// Min and Max bound the value range for synthesis and
	// selectivity estimation.
	Min, Max float64
	// Key marks a unique, sequential identifier column (objID);
	// equality predicates on key columns select a single row.
	Key bool
}

// Width returns the column's storage width in bytes.
func (c *Column) Width() int64 { return c.Type.Width() }

// Table describes a relation: its columns, logical row count, and the
// federation site that owns it.
type Table struct {
	// Name is the table name, lower-case.
	Name string
	// Columns lists the attributes in schema order.
	Columns []Column
	// Rows is the logical row count (full-scale, not sampled).
	Rows int64
	// Site names the owning federation site.
	Site string
}

// Column returns the named column, or nil if absent. Lookup is
// case-insensitive.
func (t *Table) Column(name string) *Column {
	name = strings.ToLower(name)
	for i := range t.Columns {
		if t.Columns[i].Name == name {
			return &t.Columns[i]
		}
	}
	return nil
}

// RowWidth returns the byte width of one row.
func (t *Table) RowWidth() int64 {
	var w int64
	for i := range t.Columns {
		w += t.Columns[i].Width()
	}
	return w
}

// Bytes returns the table's logical size in bytes.
func (t *Table) Bytes() int64 { return t.Rows * t.RowWidth() }

// Schema is a data release: a named, versioned set of tables.
type Schema struct {
	// Name identifies the release ("edr", "dr1").
	Name string
	// Tables lists the relations.
	Tables []Table
}

// Table returns the named table, or nil if absent. Lookup is
// case-insensitive.
func (s *Schema) Table(name string) *Table {
	name = strings.ToLower(name)
	for i := range s.Tables {
		if s.Tables[i].Name == name {
			return &s.Tables[i]
		}
	}
	return nil
}

// TotalBytes returns the release's total logical size.
func (s *Schema) TotalBytes() int64 {
	var b int64
	for i := range s.Tables {
		b += s.Tables[i].Bytes()
	}
	return b
}

// Validate checks structural well-formedness: non-empty unique table
// and column names, positive rows, sane ranges, at most one key per
// table.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("catalog: schema has empty name")
	}
	seenT := make(map[string]bool)
	for i := range s.Tables {
		t := &s.Tables[i]
		if t.Name == "" {
			return fmt.Errorf("catalog: schema %s has a table with empty name", s.Name)
		}
		if seenT[t.Name] {
			return fmt.Errorf("catalog: duplicate table %s", t.Name)
		}
		seenT[t.Name] = true
		if t.Rows <= 0 {
			return fmt.Errorf("catalog: table %s has non-positive rows", t.Name)
		}
		if t.Site == "" {
			return fmt.Errorf("catalog: table %s has no site", t.Name)
		}
		if len(t.Columns) == 0 {
			return fmt.Errorf("catalog: table %s has no columns", t.Name)
		}
		seenC := make(map[string]bool)
		keys := 0
		for j := range t.Columns {
			c := &t.Columns[j]
			if c.Name == "" {
				return fmt.Errorf("catalog: table %s has a column with empty name", t.Name)
			}
			if seenC[c.Name] {
				return fmt.Errorf("catalog: duplicate column %s.%s", t.Name, c.Name)
			}
			seenC[c.Name] = true
			if c.Width() == 0 {
				return fmt.Errorf("catalog: column %s.%s has invalid type", t.Name, c.Name)
			}
			if c.Max < c.Min {
				return fmt.Errorf("catalog: column %s.%s has Max < Min", t.Name, c.Name)
			}
			if c.Key {
				keys++
			}
		}
		if keys > 1 {
			return fmt.Errorf("catalog: table %s has %d key columns, want at most 1", t.Name, keys)
		}
	}
	return nil
}

// KeyColumn returns the table's key column, or nil if it has none.
func (t *Table) KeyColumn() *Column {
	for i := range t.Columns {
		if t.Columns[i].Key {
			return &t.Columns[i]
		}
	}
	return nil
}

// SiteSchema returns the subset of a release owned by one site, with
// the same release name. Database nodes open engines over their site
// schema so they only materialize their own tables; because data
// synthesis is seeded per (seed, table, column), a site subset holds
// exactly the same values as the corresponding tables of a full
// instance.
func SiteSchema(s *Schema, site string) *Schema {
	sub := &Schema{Name: s.Name}
	for i := range s.Tables {
		if s.Tables[i].Site == site {
			sub.Tables = append(sub.Tables, s.Tables[i])
		}
	}
	return sub
}

// Sites returns the distinct site names of a release, sorted.
func Sites(s *Schema) []string {
	seen := map[string]bool{}
	var out []string
	for i := range s.Tables {
		if !seen[s.Tables[i].Site] {
			seen[s.Tables[i].Site] = true
			out = append(out, s.Tables[i].Site)
		}
	}
	sort.Strings(out)
	return out
}
