package catalog

// Materialized views: the third class of cacheable database object
// the paper names ("database objects such as relations, attributes,
// and materialized views"). A view is a predicate-defined horizontal
// slice of one base table, optionally projected to a column subset;
// its logical size follows from the base table's size and the
// predicate's selectivity under the catalog's uniform value model —
// the same arithmetic the engine's estimator uses, so view sizes and
// query yields stay consistent.

// ViewPred is one conjunct of a view's defining predicate: a closed
// interval on a base-table column.
type ViewPred struct {
	// Column names the constrained base-table column.
	Column string
	// Lo and Hi bound the admitted values (inclusive).
	Lo, Hi float64
}

// View is a materialized view over one base table.
type View struct {
	// Name identifies the view within its release.
	Name string
	// Table names the base table.
	Table string
	// Columns lists the projected columns; empty means all columns.
	Columns []string
	// Preds is the defining predicate (a conjunction of intervals).
	Preds []ViewPred
}

// Selectivity returns the fraction of base rows the view retains
// under the uniform value model.
func (v *View) Selectivity(t *Table) float64 {
	sel := 1.0
	for _, p := range v.Preds {
		col := t.Column(p.Column)
		if col == nil {
			return 0
		}
		sel *= intervalFraction(col, p.Lo, p.Hi)
	}
	return sel
}

// intervalFraction is the fraction of a column's values falling in
// [lo, hi]: interval length over span for continuous columns, value
// count over cardinality for integer columns.
func intervalFraction(col *Column, lo, hi float64) float64 {
	if hi < lo {
		return 0
	}
	if lo < col.Min {
		lo = col.Min
	}
	if hi > col.Max {
		hi = col.Max
	}
	switch col.Type {
	case Int64, Int32, Int16:
		card := col.Max - col.Min + 1
		if card <= 0 {
			return 1
		}
		return (hi - lo + 1) / card
	default:
		span := col.Max - col.Min
		if span <= 0 {
			return 1
		}
		return (hi - lo) / span
	}
}

// RowWidth returns the byte width of one view row.
func (v *View) RowWidth(t *Table) int64 {
	if len(v.Columns) == 0 {
		return t.RowWidth()
	}
	var w int64
	for _, name := range v.Columns {
		if c := t.Column(name); c != nil {
			w += c.Width()
		}
	}
	return w
}

// Bytes returns the view's logical size.
func (v *View) Bytes(t *Table) int64 {
	rows := int64(float64(t.Rows) * v.Selectivity(t))
	if rows < 1 {
		rows = 1
	}
	return rows * v.RowWidth(t)
}

// HasColumn reports whether the view carries the named column.
func (v *View) HasColumn(t *Table, name string) bool {
	if len(v.Columns) == 0 {
		return t.Column(name) != nil
	}
	for _, c := range v.Columns {
		if c == name {
			return true
		}
	}
	return false
}

// StandardViews returns the release's materialized views, modeled on
// the views SkyServer actually publishes: Galaxy and Star (PhotoObj
// sliced by type), a bright-galaxy subset, and a low-redshift
// spectroscopic slice.
func StandardViews(s *Schema) []View {
	var views []View
	if po := s.Table("photoobj"); po != nil {
		views = append(views,
			View{
				Name:  "galaxy",
				Table: po.Name,
				Preds: []ViewPred{{Column: "type", Lo: 3, Hi: 3}},
			},
			View{
				Name:  "star",
				Table: po.Name,
				Preds: []ViewPred{{Column: "type", Lo: 6, Hi: 6}},
			},
			View{
				Name:  "brightgalaxy",
				Table: po.Name,
				Preds: []ViewPred{
					{Column: "type", Lo: 3, Hi: 3},
					{Column: "modelmag_r", Lo: 12, Hi: 19},
				},
			},
		)
	}
	if so := s.Table("specobj"); so != nil {
		views = append(views, View{
			Name:  "lowzspec",
			Table: so.Name,
			Preds: []ViewPred{{Column: "z", Lo: 0, Hi: 1}},
		})
	}
	return views
}
