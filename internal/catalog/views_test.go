package catalog

import "testing"

func TestStandardViewsDefined(t *testing.T) {
	s := EDR()
	views := StandardViews(s)
	if len(views) < 4 {
		t.Fatalf("views = %d, want ≥ 4", len(views))
	}
	byName := map[string]*View{}
	for i := range views {
		byName[views[i].Name] = &views[i]
		if s.Table(views[i].Table) == nil {
			t.Fatalf("view %s over unknown table %s", views[i].Name, views[i].Table)
		}
	}
	for _, want := range []string{"galaxy", "star", "brightgalaxy", "lowzspec"} {
		if byName[want] == nil {
			t.Fatalf("missing standard view %s", want)
		}
	}
}

func TestViewSelectivity(t *testing.T) {
	s := EDR()
	po := s.Table("photoobj")
	views := StandardViews(s)
	var galaxy, bright *View
	for i := range views {
		switch views[i].Name {
		case "galaxy":
			galaxy = &views[i]
		case "brightgalaxy":
			bright = &views[i]
		}
	}
	// type ∈ [3,6] (galaxies and stars dominate the photometric
	// catalog): the galaxy slice keeps 1/4 of rows.
	if got := galaxy.Selectivity(po); got < 0.24 || got > 0.26 {
		t.Fatalf("galaxy selectivity = %v, want ≈ 0.25", got)
	}
	// The bright subset must be strictly smaller.
	if bright.Selectivity(po) >= galaxy.Selectivity(po) {
		t.Fatal("brightgalaxy should be more selective than galaxy")
	}
}

func TestViewBytes(t *testing.T) {
	s := EDR()
	po := s.Table("photoobj")
	for _, v := range StandardViews(s) {
		if v.Table != po.Name {
			continue
		}
		b := v.Bytes(po)
		if b <= 0 || b >= po.Bytes() {
			t.Fatalf("view %s bytes = %d, want in (0, %d)", v.Name, b, po.Bytes())
		}
	}
}

func TestViewRowWidth(t *testing.T) {
	s := EDR()
	po := s.Table("photoobj")
	full := View{Name: "v", Table: po.Name}
	if full.RowWidth(po) != po.RowWidth() {
		t.Fatal("empty column list should mean full width")
	}
	slim := View{Name: "v", Table: po.Name, Columns: []string{"objid", "ra"}}
	if slim.RowWidth(po) != 16 {
		t.Fatalf("slim width = %d, want 16", slim.RowWidth(po))
	}
}

func TestViewHasColumn(t *testing.T) {
	s := EDR()
	po := s.Table("photoobj")
	full := View{Name: "v", Table: po.Name}
	if !full.HasColumn(po, "ra") || full.HasColumn(po, "ghost") {
		t.Fatal("full view column membership wrong")
	}
	slim := View{Name: "v", Table: po.Name, Columns: []string{"ra"}}
	if !slim.HasColumn(po, "ra") || slim.HasColumn(po, "dec") {
		t.Fatal("slim view column membership wrong")
	}
}

func TestIntervalFraction(t *testing.T) {
	f := Column{Name: "f", Type: Float64, Min: 0, Max: 100}
	if got := intervalFraction(&f, 25, 75); got != 0.5 {
		t.Fatalf("float fraction = %v, want 0.5", got)
	}
	i := Column{Name: "i", Type: Int16, Min: 0, Max: 9}
	if got := intervalFraction(&i, 3, 3); got != 0.1 {
		t.Fatalf("int point fraction = %v, want 0.1", got)
	}
	if got := intervalFraction(&f, 80, 20); got != 0 {
		t.Fatalf("inverted interval = %v, want 0", got)
	}
	if got := intervalFraction(&f, -10, 200); got != 1 {
		t.Fatalf("clipped interval = %v, want 1", got)
	}
}
