package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Seq: 1, SQL: "select ra from photoobj", Class: "range", Yield: 100,
			Accesses: []Access{{Object: "edr/photoobj.ra", Yield: 100}}},
		{Seq: 2, SQL: "select * from weblog", Class: ClassLog, Yield: 50,
			Accesses: []Access{{Object: "edr/weblog", Yield: 50}}},
		{Seq: 3, SQL: "select z from specobj", Class: "range", Yield: 70,
			Accesses: []Access{{Object: "edr/specobj.z", Yield: 40}, {Object: "edr/specobj.zconf", Yield: 30}}},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	recs := sampleRecords()
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Fatalf("round trip mismatch:\n%v\n%v", recs, got)
	}
}

func TestFileRoundTrip(t *testing.T) {
	recs := sampleRecords()
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Fatal("file round trip mismatch")
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	input := `{"seq":1,"yield":10,"accesses":[{"object":"a","yield":10}]}

{"seq":2,"yield":20,"accesses":[{"object":"b","yield":20}]}
`
	got, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("records = %d, want 2", len(got))
	}
}

func TestReadBadJSON(t *testing.T) {
	if _, err := Read(strings.NewReader("{oops\n")); err == nil {
		t.Fatal("bad JSON should error")
	}
}

func TestReadMissingFile(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent.jsonl")); !os.IsNotExist(err) {
		t.Fatalf("error = %v, want not-exist", err)
	}
}

func TestPreprocessDropsLogQueries(t *testing.T) {
	out := Preprocess(sampleRecords())
	if len(out) != 2 {
		t.Fatalf("records after preprocess = %d, want 2", len(out))
	}
	for _, r := range out {
		if r.Class == ClassLog {
			t.Fatal("log query survived preprocessing")
		}
	}
	// Sequence numbers are preserved, not renumbered.
	if out[1].Seq != 3 {
		t.Fatalf("seq = %d, want 3 (preserved)", out[1].Seq)
	}
}

func TestRequestsConversion(t *testing.T) {
	reqs := Requests(sampleRecords())
	if len(reqs) != 3 {
		t.Fatalf("requests = %d", len(reqs))
	}
	if reqs[2].Seq != 3 || len(reqs[2].Accesses) != 2 {
		t.Fatalf("request = %+v", reqs[2])
	}
	if string(reqs[2].Accesses[1].Object) != "edr/specobj.zconf" {
		t.Fatalf("object = %s", reqs[2].Accesses[1].Object)
	}
}

func TestSequenceCost(t *testing.T) {
	if got := SequenceCost(sampleRecords()); got != 220 {
		t.Fatalf("sequence cost = %d, want 220", got)
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := Validate(sampleRecords()); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	cases := []struct {
		name string
		recs []Record
	}{
		{"non-increasing seq", []Record{{Seq: 2, Yield: 1}, {Seq: 2, Yield: 1}}},
		{"zero seq", []Record{{Seq: 0, Yield: 1}}},
		{"negative yield", []Record{{Seq: 1, Yield: -1}}},
		{"negative access", []Record{{Seq: 1, Yield: 5, Accesses: []Access{{Object: "a", Yield: -5}}}}},
		{"sum mismatch", []Record{{Seq: 1, Yield: 5, Accesses: []Access{{Object: "a", Yield: 4}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Validate(tc.recs); err == nil {
				t.Fatal("Validate should have failed")
			}
		})
	}
}

func TestGzipFileRoundTrip(t *testing.T) {
	recs := sampleRecords()
	path := filepath.Join(t.TempDir(), "trace.jsonl.gz")
	if err := WriteFile(path, recs); err != nil {
		t.Fatal(err)
	}
	// The file must actually be gzip (magic bytes 1f 8b).
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 2 || raw[0] != 0x1f || raw[1] != 0x8b {
		t.Fatal("file is not gzip-compressed")
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, got) {
		t.Fatal("gzip round trip mismatch")
	}
}

func TestReadFileBadGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl.gz")
	if err := os.WriteFile(path, []byte("not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("corrupt gzip should error")
	}
}
