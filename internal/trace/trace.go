// Package trace defines the on-disk workload trace format: one JSON
// record per line, each holding a query's SQL, its class tag, its
// total yield, and its decomposed per-object accesses. The format is
// the interchange point between the workload generator, the analysis
// tools, and the cache simulator.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"bypassyield/internal/core"
)

// Access is a per-object share of a query's yield.
type Access struct {
	// Object is the cacheable object's identifier
	// (release/table[.column]).
	Object string `json:"object"`
	// Yield is this object's share of the query yield, in bytes.
	Yield int64 `json:"yield"`
}

// Record is one query of a workload trace.
type Record struct {
	// Seq is the 1-based position in the trace.
	Seq int64 `json:"seq"`
	// SQL is the statement text.
	SQL string `json:"sql,omitempty"`
	// Class tags the query class (range, spatial, identity, join,
	// aggregate, log, ...), used by the workload analyzers.
	Class string `json:"class,omitempty"`
	// Yield is the query's total result size in bytes.
	Yield int64 `json:"yield"`
	// Accesses decomposes the yield across referenced objects.
	Accesses []Access `json:"accesses"`
}

// Write streams records as JSON lines.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("trace: encode record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses JSON-line records until EOF.
func Read(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	return recs, nil
}

// WriteFile writes records to a file, creating or truncating it.
// Paths ending in ".gz" are gzip-compressed transparently.
func WriteFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := Write(w, recs); err != nil {
		f.Close()
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// ReadFile reads all records from a file, transparently decompressing
// ".gz" paths.
func ReadFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		defer gz.Close()
		r = gz
	}
	return Read(r)
}

// ClassLog tags queries against the query logs themselves; the paper
// removes these in preprocessing ("removing queries that query the
// logs themselves").
const ClassLog = "log"

// Preprocess drops log-self queries, following the paper's trace
// preparation. Sequence numbers are preserved (time is relative to
// the original stream).
func Preprocess(recs []Record) []Record {
	out := make([]Record, 0, len(recs))
	for _, r := range recs {
		if r.Class == ClassLog {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Requests converts records to simulator requests.
func Requests(recs []Record) []core.Request {
	reqs := make([]core.Request, len(recs))
	for i, r := range recs {
		req := core.Request{Seq: r.Seq, SQL: r.SQL}
		req.Accesses = make([]core.Access, len(r.Accesses))
		for j, a := range r.Accesses {
			req.Accesses[j] = core.Access{Object: core.ObjectID(a.Object), Yield: a.Yield}
		}
		reqs[i] = req
	}
	return reqs
}

// SequenceCost returns the total yield of the trace — the paper's
// "sequence cost", the WAN traffic without any caching on a uniform
// network.
func SequenceCost(recs []Record) int64 {
	var total int64
	for _, r := range recs {
		total += r.Yield
	}
	return total
}

// Validate checks internal consistency: positive sequence numbers in
// increasing order, non-negative yields, and per-record access sums
// equal to the record yield.
func Validate(recs []Record) error {
	var prev int64
	for i, r := range recs {
		if r.Seq <= prev {
			return fmt.Errorf("trace: record %d: seq %d not increasing (prev %d)", i, r.Seq, prev)
		}
		prev = r.Seq
		if r.Yield < 0 {
			return fmt.Errorf("trace: record %d: negative yield", i)
		}
		var sum int64
		for _, a := range r.Accesses {
			if a.Yield < 0 {
				return fmt.Errorf("trace: record %d: negative access yield for %s", i, a.Object)
			}
			sum += a.Yield
		}
		if len(r.Accesses) > 0 && sum != r.Yield {
			return fmt.Errorf("trace: record %d: access yields sum to %d, record yield is %d", i, sum, r.Yield)
		}
	}
	return nil
}
