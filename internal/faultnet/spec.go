package faultnet

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Plan is a parsed -chaos specification: one injector per site group,
// each with optional scheduling (activate after a delay, heal after a
// window). The zero-site group ("" key) applies to every connection
// the daemon does not attribute to a named site.
type Plan struct {
	groups []*group
}

type group struct {
	site  string
	f     Faults
	after time.Duration // delay before the faults activate
	for_  time.Duration // window after activation; 0 = forever
	inj   *Injector
}

// ParsePlan parses a -chaos flag value. Grammar, groups separated by
// ';', directives by ',':
//
//	[site:]directive(,directive)*
//
// Directives: latency=DUR jitter=DUR throttle=BYTES reset=PROB
// corrupt=PROB truncate=PROB blackhole after=DUR for=DUR
//
// Examples:
//
//	-chaos 'latency=20ms,jitter=5ms'
//	-chaos 'spec.sdss.org:blackhole,after=10s,for=30s'
//	-chaos 'photo.sdss.org:reset=0.05;meta.sdss.org:throttle=65536'
//
// A site prefix scopes the group to that site; without one the group
// applies to all sites. The seed makes the probabilistic directives
// reproducible.
func ParsePlan(spec string, seed int64) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("faultnet: empty chaos spec")
	}
	p := &Plan{}
	for gi, raw := range strings.Split(spec, ";") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		g := &group{}
		// A site prefix is "host:directives"; distinguish from a bare
		// directive list by checking the head for '='.
		if idx := strings.Index(raw, ":"); idx >= 0 && !strings.Contains(raw[:idx], "=") {
			g.site = strings.TrimSpace(raw[:idx])
			raw = raw[idx+1:]
		}
		for _, d := range strings.Split(raw, ",") {
			d = strings.TrimSpace(d)
			if d == "" {
				continue
			}
			key, val, hasVal := strings.Cut(d, "=")
			if err := applyDirective(g, key, val, hasVal); err != nil {
				return nil, fmt.Errorf("faultnet: group %d: %w", gi+1, err)
			}
		}
		if !g.f.active() {
			return nil, fmt.Errorf("faultnet: group %d (%q) injects no faults", gi+1, raw)
		}
		g.inj = NewInjector(seed + int64(gi))
		p.groups = append(p.groups, g)
	}
	if len(p.groups) == 0 {
		return nil, fmt.Errorf("faultnet: chaos spec has no groups")
	}
	return p, nil
}

func applyDirective(g *group, key, val string, hasVal bool) error {
	needDur := func() (time.Duration, error) {
		if !hasVal {
			return 0, fmt.Errorf("%s needs a duration value", key)
		}
		d, err := time.ParseDuration(val)
		if err != nil || d < 0 {
			return 0, fmt.Errorf("%s: bad duration %q", key, val)
		}
		return d, nil
	}
	needProb := func() (float64, error) {
		if !hasVal {
			return 0, fmt.Errorf("%s needs a probability value", key)
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return 0, fmt.Errorf("%s: bad probability %q (want 0..1)", key, val)
		}
		return p, nil
	}
	var err error
	switch key {
	case "latency":
		g.f.Latency, err = needDur()
	case "jitter":
		g.f.Jitter, err = needDur()
	case "throttle":
		if !hasVal {
			return fmt.Errorf("throttle needs a bytes/sec value")
		}
		var n int64
		n, err = strconv.ParseInt(val, 10, 64)
		if err != nil || n <= 0 {
			return fmt.Errorf("throttle: bad bytes/sec %q", val)
		}
		g.f.ThrottleBps = n
	case "reset":
		g.f.ResetProb, err = needProb()
	case "corrupt":
		g.f.CorruptProb, err = needProb()
	case "truncate":
		g.f.TruncateProb, err = needProb()
	case "blackhole":
		if hasVal {
			return fmt.Errorf("blackhole takes no value")
		}
		g.f.BlackHole = true
	case "after":
		g.after, err = needDur()
	case "for":
		g.for_, err = needDur()
	default:
		return fmt.Errorf("unknown directive %q", key)
	}
	return err
}

// Start arms each group's schedule: faults activate after their
// `after` delay (immediately when zero) and heal after the `for`
// window (never when zero). Call Stop to cancel pending transitions.
func (p *Plan) Start() {
	if p == nil {
		return
	}
	for _, g := range p.groups {
		g := g
		arm := func() {
			g.inj.Set(g.f)
			if g.for_ > 0 {
				t := time.AfterFunc(g.for_, func() { g.inj.Set(Faults{}) })
				g.inj.mu.Lock()
				g.inj.timers = append(g.inj.timers, t)
				g.inj.mu.Unlock()
			}
		}
		if g.after > 0 {
			t := time.AfterFunc(g.after, arm)
			g.inj.mu.Lock()
			g.inj.timers = append(g.inj.timers, t)
			g.inj.mu.Unlock()
		} else {
			arm()
		}
	}
}

// Stop cancels all pending schedule transitions. Already-active
// faults stay active.
func (p *Plan) Stop() {
	if p == nil {
		return
	}
	for _, g := range p.groups {
		g.inj.Stop()
	}
}

// Injector returns the injector governing site (nil when no group
// matches — wrap-with-nil is a no-op, so callers can use the result
// unconditionally). Site-scoped groups win over the catch-all.
func (p *Plan) Injector(site string) *Injector {
	if p == nil {
		return nil
	}
	var catchAll *Injector
	for _, g := range p.groups {
		switch g.site {
		case site:
			if site != "" {
				return g.inj
			}
			catchAll = g.inj
		case "":
			catchAll = g.inj
		}
	}
	return catchAll
}

// Sites lists the named sites the plan scopes groups to.
func (p *Plan) Sites() []string {
	if p == nil {
		return nil
	}
	var out []string
	for _, g := range p.groups {
		if g.site != "" {
			out = append(out, g.site)
		}
	}
	return out
}
