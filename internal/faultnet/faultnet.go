// Package faultnet injects network faults into net.Conn and
// net.Listener for chaos testing the federation: added latency,
// bandwidth throttling, connection resets, black-holes (operations
// that hang until a deadline fires or the connection closes), and
// frame truncation/corruption. Faults are driven by a seeded PRNG so
// a chaos run is reproducible, and the active fault set of an
// Injector can be swapped at any time — tests black-hole a site
// mid-run and later heal it with two calls to Set.
//
// The wrappers are deadline-aware: a black-holed Read or Write still
// honors SetDeadline/SetReadDeadline/SetWriteDeadline, returning a
// net.Error with Timeout() == true exactly as a kernel socket would.
// An un-deadlined operation against a black-holed connection hangs
// forever — which is the point: it is the failure mode DialTimeout
// and RPC deadlines exist to defend against.
//
// Daemons opt in with the -chaos flag (see ParsePlan for the spec
// grammar); tests construct Injectors directly.
package faultnet

import (
	"math/rand"
	"net"
	"sync"
	"time"
)

// Faults is one active fault set. The zero value injects nothing.
type Faults struct {
	// Latency is added to every Read and Write.
	Latency time.Duration
	// Jitter adds a seeded-random extra delay in [0, Jitter) on top of
	// Latency.
	Jitter time.Duration
	// ThrottleBps caps throughput: each op sleeps n/ThrottleBps after
	// moving n bytes. 0 disables.
	ThrottleBps int64
	// ResetProb is the per-operation probability of closing the
	// connection and returning a reset error.
	ResetProb float64
	// CorruptProb is the per-Read probability of flipping one byte of
	// the data moved — upstream parsers must reject the damage rather
	// than panic.
	CorruptProb float64
	// TruncateProb is the per-Write probability of silently dropping
	// the tail of the buffer while reporting full success — the peer
	// hangs waiting for bytes that never arrive.
	TruncateProb float64
	// BlackHole hangs every Read and Write until the connection's
	// deadline fires or it is closed.
	BlackHole bool
}

// active reports whether the set injects anything at all.
func (f Faults) active() bool {
	return f.Latency > 0 || f.Jitter > 0 || f.ThrottleBps > 0 ||
		f.ResetProb > 0 || f.CorruptProb > 0 || f.TruncateProb > 0 || f.BlackHole
}

// Injector applies one mutable fault set to any number of wrapped
// connections. All methods are safe for concurrent use; Set swaps the
// active faults for every existing and future wrapped conn.
type Injector struct {
	mu     sync.Mutex
	f      Faults
	rng    *rand.Rand
	timers []*time.Timer
}

// NewInjector returns an injector with no active faults, whose random
// decisions (jitter, reset/corrupt/truncate rolls, corruption offsets)
// derive from seed.
func NewInjector(seed int64) *Injector {
	if seed == 0 {
		seed = 1
	}
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Set replaces the active fault set. Nil-safe.
func (i *Injector) Set(f Faults) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.f = f
	i.mu.Unlock()
}

// Faults returns the active fault set (zero on a nil injector).
func (i *Injector) Faults() Faults {
	if i == nil {
		return Faults{}
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.f
}

// Stop cancels any schedule timers attached by Plan.Start. Nil-safe.
func (i *Injector) Stop() {
	if i == nil {
		return
	}
	i.mu.Lock()
	timers := i.timers
	i.timers = nil
	i.mu.Unlock()
	for _, t := range timers {
		t.Stop()
	}
}

// roll returns true with probability p, using the seeded PRNG.
func (i *Injector) roll(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	i.mu.Lock()
	v := i.rng.Float64()
	i.mu.Unlock()
	return v < p
}

// jitter returns a seeded-random duration in [0, d).
func (i *Injector) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	i.mu.Lock()
	v := time.Duration(i.rng.Int63n(int64(d)))
	i.mu.Unlock()
	return v
}

// intn returns a seeded-random int in [0, n).
func (i *Injector) intn(n int) int {
	i.mu.Lock()
	v := i.rng.Intn(n)
	i.mu.Unlock()
	return v
}

// Conn wraps c so every operation passes through the injector's
// active faults. Returns c unchanged on a nil injector.
func (i *Injector) Conn(c net.Conn) net.Conn {
	if i == nil {
		return c
	}
	return &conn{Conn: c, inj: i, closed: make(chan struct{})}
}

// Listener wraps ln so every accepted connection is fault-injected.
// Returns ln unchanged on a nil injector.
func (i *Injector) Listener(ln net.Listener) net.Listener {
	if i == nil {
		return ln
	}
	return &listener{Listener: ln, inj: i}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Conn(c), nil
}

// conn is a fault-injected connection. Deadlines are mirrored locally
// so black-holed operations can honor them without the underlying
// socket's help.
type conn struct {
	net.Conn
	inj *Injector

	mu        sync.Mutex
	readDL    time.Time
	writeDL   time.Time
	closed    chan struct{}
	closeOnce sync.Once
}

// timeoutError satisfies net.Error with Timeout() == true, mirroring
// what a kernel socket deadline produces.
type timeoutError struct{}

func (timeoutError) Error() string   { return "faultnet: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

// resetError models a peer connection reset.
type resetError struct{}

func (resetError) Error() string   { return "faultnet: connection reset" }
func (resetError) Timeout() bool   { return false }
func (resetError) Temporary() bool { return false }

func (c *conn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return c.Conn.Close()
}

func (c *conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL, c.writeDL = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.readDL = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.writeDL = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

// stall blocks until the deadline fires or the connection closes —
// the black-hole primitive. A zero deadline blocks until Close.
func (c *conn) stall(dl time.Time) error {
	var fire <-chan time.Time
	if !dl.IsZero() {
		t := time.NewTimer(time.Until(dl))
		defer t.Stop()
		fire = t.C
	}
	select {
	case <-c.closed:
		return net.ErrClosed
	case <-fire:
		return timeoutError{}
	}
}

// delay sleeps for the fault set's latency plus jitter, cut short by
// connection close.
func (c *conn) delay(f Faults) error {
	d := f.Latency + c.inj.jitter(f.Jitter)
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-c.closed:
		return net.ErrClosed
	case <-t.C:
		return nil
	}
}

// throttle models a bandwidth cap: moving n bytes takes at least
// n/bps seconds.
func (c *conn) throttle(f Faults, n int) {
	if f.ThrottleBps <= 0 || n <= 0 {
		return
	}
	d := time.Duration(float64(n) / float64(f.ThrottleBps) * float64(time.Second))
	if d > 0 {
		time.Sleep(d)
	}
}

func (c *conn) Read(b []byte) (int, error) {
	f := c.inj.Faults()
	if f.BlackHole {
		c.mu.Lock()
		dl := c.readDL
		c.mu.Unlock()
		return 0, c.stall(dl)
	}
	if err := c.delay(f); err != nil {
		return 0, err
	}
	if c.inj.roll(f.ResetProb) {
		c.Close()
		return 0, resetError{}
	}
	n, err := c.Conn.Read(b)
	if n > 0 && c.inj.roll(f.CorruptProb) {
		b[c.inj.intn(n)] ^= 0xff
	}
	c.throttle(f, n)
	return n, err
}

func (c *conn) Write(b []byte) (int, error) {
	f := c.inj.Faults()
	if f.BlackHole {
		c.mu.Lock()
		dl := c.writeDL
		c.mu.Unlock()
		return 0, c.stall(dl)
	}
	if err := c.delay(f); err != nil {
		return 0, err
	}
	if c.inj.roll(f.ResetProb) {
		c.Close()
		return 0, resetError{}
	}
	if len(b) > 1 && c.inj.roll(f.TruncateProb) {
		// Drop the tail but report full success: the peer starves.
		if _, err := c.Conn.Write(b[:len(b)/2]); err != nil {
			return 0, err
		}
		return len(b), nil
	}
	n, err := c.Conn.Write(b)
	c.throttle(f, n)
	return n, err
}
