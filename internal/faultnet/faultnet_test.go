package faultnet

import (
	"errors"
	"net"
	"testing"
	"time"
)

// pipe returns a faulted client side and the plain server side of an
// in-memory connection pair.
func pipe(t *testing.T, inj *Injector) (net.Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	return inj.Conn(a), b
}

func TestNoFaultsPassThrough(t *testing.T) {
	inj := NewInjector(42)
	c, peer := pipe(t, inj)
	go func() {
		buf := make([]byte, 5)
		peer.Read(buf)
		peer.Write(buf)
	}()
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := c.Read(buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("round trip = %q", buf)
	}
}

func TestLatency(t *testing.T) {
	inj := NewInjector(1)
	inj.Set(Faults{Latency: 30 * time.Millisecond})
	c, peer := pipe(t, inj)
	go peer.Read(make([]byte, 1))
	start := time.Now()
	if _, err := c.Write([]byte{1}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("write took %v, want >= 30ms latency", d)
	}
}

func TestBlackHoleHonorsDeadline(t *testing.T) {
	inj := NewInjector(1)
	inj.Set(Faults{BlackHole: true})
	c, _ := pipe(t, inj)
	c.SetDeadline(time.Now().Add(40 * time.Millisecond))
	start := time.Now()
	_, err := c.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("err = %v, want net.Error with Timeout()", err)
	}
	if d := time.Since(start); d < 30*time.Millisecond || d > 2*time.Second {
		t.Fatalf("blackhole read returned after %v, want ~40ms", d)
	}
	// Writes stall the same way.
	c.SetWriteDeadline(time.Now().Add(20 * time.Millisecond))
	if _, err := c.Write([]byte{1}); err == nil {
		t.Fatal("blackhole write succeeded")
	}
}

func TestBlackHoleUnblocksOnClose(t *testing.T) {
	inj := NewInjector(1)
	inj.Set(Faults{BlackHole: true})
	c, _ := pipe(t, inj)
	done := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("err = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blackholed read did not unblock on Close")
	}
}

func TestHealMidRun(t *testing.T) {
	inj := NewInjector(1)
	inj.Set(Faults{BlackHole: true})
	c, peer := pipe(t, inj)
	c.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read through blackhole succeeded")
	}
	// Heal: the same wrapped conn works again.
	inj.Set(Faults{})
	c.SetReadDeadline(time.Time{})
	go peer.Write([]byte{7})
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err != nil || buf[0] != 7 {
		t.Fatalf("post-heal read = %v %v", buf, err)
	}
}

func TestResetAlways(t *testing.T) {
	inj := NewInjector(1)
	inj.Set(Faults{ResetProb: 1})
	c, _ := pipe(t, inj)
	_, err := c.Write([]byte{1})
	if err == nil {
		t.Fatal("write through reset fault succeeded")
	}
	var ne net.Error
	if !errors.As(err, &ne) || ne.Timeout() {
		t.Fatalf("err = %v, want non-timeout net.Error", err)
	}
	// The conn is closed after a reset; subsequent ops fail fast.
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("read after reset succeeded")
	}
}

func TestCorruptFlipsExactlyOneByte(t *testing.T) {
	inj := NewInjector(7)
	inj.Set(Faults{CorruptProb: 1})
	c, peer := pipe(t, inj)
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	go peer.Write(payload)
	buf := make([]byte, len(payload))
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < n; i++ {
		if buf[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1 (buf=%v)", diff, buf[:n])
	}
}

func TestTruncateStarvesPeer(t *testing.T) {
	inj := NewInjector(3)
	inj.Set(Faults{TruncateProb: 1})
	c, peer := pipe(t, inj)
	payload := []byte("0123456789")
	got := make(chan int, 1)
	go func() {
		buf := make([]byte, len(payload))
		peer.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
		n := 0
		for n < len(payload) {
			m, err := peer.Read(buf[n:])
			n += m
			if err != nil {
				break
			}
		}
		got <- n
	}()
	n, err := c.Write(payload)
	if err != nil || n != len(payload) {
		// Truncation must LIE about success — that is the fault.
		t.Fatalf("write = %d, %v; want full length, nil", n, err)
	}
	if received := <-got; received >= len(payload) {
		t.Fatalf("peer received %d bytes, want fewer than %d", received, len(payload))
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	run := func(seed int64) []bool {
		inj := NewInjector(seed)
		out := make([]bool, 32)
		for i := range out {
			out[i] = inj.roll(0.5)
		}
		return out
	}
	a, b := run(99), run(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at roll %d", i)
		}
	}
	c := run(100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical rolls")
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	inj := NewInjector(1)
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := inj.Listener(base)
	defer ln.Close()
	inj.Set(Faults{BlackHole: true})
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	srv := <-accepted
	defer srv.Close()
	srv.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := srv.Read(make([]byte, 1)); err == nil {
		t.Fatal("accepted conn not fault-injected")
	}
}

func TestNilInjectorPassThrough(t *testing.T) {
	var inj *Injector
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if inj.Conn(a) != a {
		t.Fatal("nil injector should return conn unchanged")
	}
	inj.Set(Faults{BlackHole: true}) // must not panic
	inj.Stop()
	if inj.Faults().active() {
		t.Fatal("nil injector reports active faults")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("latency=20ms,jitter=5ms;spec.sdss.org:blackhole,after=10s,for=30s", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.groups) != 2 {
		t.Fatalf("groups = %d, want 2", len(p.groups))
	}
	g0 := p.groups[0]
	if g0.site != "" || g0.f.Latency != 20*time.Millisecond || g0.f.Jitter != 5*time.Millisecond {
		t.Fatalf("group 0 = %+v", g0)
	}
	g1 := p.groups[1]
	if g1.site != "spec.sdss.org" || !g1.f.BlackHole || g1.after != 10*time.Second || g1.for_ != 30*time.Second {
		t.Fatalf("group 1 = %+v", g1)
	}
	// Site-scoped group wins over catch-all for its site.
	if p.Injector("spec.sdss.org") != g1.inj {
		t.Fatal("site lookup did not return scoped injector")
	}
	if p.Injector("photo.sdss.org") != g0.inj {
		t.Fatal("unscoped site should fall back to catch-all")
	}
	if sites := p.Sites(); len(sites) != 1 || sites[0] != "spec.sdss.org" {
		t.Fatalf("Sites() = %v", sites)
	}
}

func TestParsePlanRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"",
		"latency",           // missing value
		"latency=nope",      // bad duration
		"reset=2",           // probability out of range
		"blackhole=yes",     // blackhole takes no value
		"bogus=1",           // unknown directive
		"after=5s",          // schedule with no faults
		"throttle=-1",       // non-positive throttle
		"site.org:after=1s", // scoped group with no faults
	} {
		if _, err := ParsePlan(spec, 1); err == nil {
			t.Fatalf("ParsePlan(%q) accepted a bad spec", spec)
		}
	}
}

func TestPlanSchedule(t *testing.T) {
	p, err := ParsePlan("blackhole,after=30ms,for=40ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	inj := p.Injector("any.site")
	p.Start()
	defer p.Stop()
	if inj.Faults().BlackHole {
		t.Fatal("faults active before `after` elapsed")
	}
	deadline := time.Now().Add(2 * time.Second)
	for !inj.Faults().BlackHole {
		if time.Now().After(deadline) {
			t.Fatal("faults never activated")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for inj.Faults().BlackHole {
		if time.Now().After(deadline) {
			t.Fatal("faults never healed after `for` window")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestPlanImmediateStart(t *testing.T) {
	p, err := ParsePlan("latency=1ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	if p.Injector("x").Faults().Latency != time.Millisecond {
		t.Fatal("zero-delay group not active immediately after Start")
	}
}
