package semcache

import (
	"testing"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/sqlparse"
)

func testCache(t *testing.T, capacity int64) *Cache {
	t.Helper()
	return New(catalog.EDR(), capacity)
}

func q(t *testing.T, c *Cache, clock int64, sql string, bytes int64) core.Decision {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return c.Query(clock, stmt, bytes)
}

func TestExactReuse(t *testing.T) {
	c := testCache(t, 1<<20)
	sql := "select ra, dec from photoobj where ra between 10 and 20"
	if d := q(t, c, 1, sql, 1000); d != core.Bypass {
		t.Fatalf("first = %v, want bypass", d)
	}
	if d := q(t, c, 2, sql, 1000); d != core.Hit {
		t.Fatalf("repeat = %v, want hit", d)
	}
	hits, misses, _, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestContainmentHit(t *testing.T) {
	c := testCache(t, 1<<20)
	q(t, c, 1, "select ra, dec from photoobj where ra between 10 and 50", 5000)
	// Narrower range, subset of columns → answerable by filtering the
	// cached result.
	if d := q(t, c, 2, "select ra from photoobj where ra between 20 and 30", 800); d != core.Hit {
		t.Fatalf("contained query = %v, want hit", d)
	}
	// A range extending beyond the cached one misses.
	if d := q(t, c, 3, "select ra from photoobj where ra between 40 and 60", 800); d != core.Bypass {
		t.Fatalf("overlapping-but-escaping query = %v, want bypass", d)
	}
}

func TestContainmentNeedsFilterColumns(t *testing.T) {
	c := testCache(t, 1<<20)
	// The cached result carries ra (filter) and dec (projection).
	q(t, c, 1, "select dec from photoobj where ra between 10 and 50", 5000)
	// Re-filtering on ra works because ra was materialized with the
	// result.
	if d := q(t, c, 2, "select dec from photoobj where ra between 20 and 30", 400); d != core.Hit {
		t.Fatalf("filterable query = %v, want hit", d)
	}
	// A query needing a column the entry never materialized misses.
	if d := q(t, c, 3, "select type from photoobj where ra between 20 and 30", 400); d != core.Bypass {
		t.Fatalf("missing-column query = %v, want bypass", d)
	}
}

func TestUnconstrainedQueryNotAnsweredByFiltered(t *testing.T) {
	c := testCache(t, 1<<20)
	q(t, c, 1, "select ra from photoobj where ra between 10 and 50", 5000)
	// The new query wants ALL rows; the cached entry only has some.
	if d := q(t, c, 2, "select ra from photoobj", 90000); d != core.Bypass {
		t.Fatalf("wider query = %v, want bypass", d)
	}
}

func TestUnconstrainedEntryAnswersAnything(t *testing.T) {
	c := testCache(t, 1<<30)
	q(t, c, 1, "select ra, dec from photoobj", 90000)
	if d := q(t, c, 2, "select ra from photoobj where ra < 100 and dec > 0", 800); d != core.Hit {
		t.Fatalf("restricted query over full cached scan = %v, want hit", d)
	}
}

func TestEqualityAndOperatorIntervals(t *testing.T) {
	c := testCache(t, 1<<20)
	q(t, c, 1, "select ra, objid from photoobj where ra < 100", 5000)
	if d := q(t, c, 2, "select objid from photoobj where ra = 50", 100); d != core.Hit {
		t.Fatalf("point query inside cached range = %v, want hit", d)
	}
	if d := q(t, c, 3, "select objid from photoobj where ra = 150", 100); d != core.Bypass {
		t.Fatalf("point query outside cached range = %v, want bypass", d)
	}
}

func TestUncacheableQueries(t *testing.T) {
	c := testCache(t, 1<<20)
	for _, sql := range []string{
		"select count(*) from photoobj where ra < 10",
		"select top 5 ra from photoobj",
		"select p.ra, s.z from photoobj p, specobj s where p.objid = s.objid",
	} {
		if d := q(t, c, 1, sql, 1000); d != core.Bypass {
			t.Fatalf("%q = %v, want bypass (uncacheable)", sql, d)
		}
	}
	_, _, rejected, _ := c.Stats()
	if rejected != 3 {
		t.Fatalf("rejected = %d, want 3", rejected)
	}
	if c.Len() != 0 {
		t.Fatal("uncacheable queries must not be admitted")
	}
}

func TestLRUEviction(t *testing.T) {
	c := testCache(t, 1000)
	q(t, c, 1, "select ra from photoobj where ra between 0 and 1", 600)
	q(t, c, 2, "select ra from photoobj where ra between 2 and 3", 600) // evicts first
	if _, _, _, ev := c.Stats(); ev != 1 {
		t.Fatalf("evictions = %d, want 1", ev)
	}
	if d := q(t, c, 3, "select ra from photoobj where ra between 0 and 1", 600); d != core.Bypass {
		t.Fatalf("evicted entry = %v, want bypass", d)
	}
	if d := q(t, c, 4, "select ra from photoobj where ra between 2 and 3", 600); d != core.Bypass {
		// Entry for 2..3 was evicted at t=3's admit.
		t.Fatalf("after churn = %v, want bypass", d)
	}
}

func TestOversizedResultNotAdmitted(t *testing.T) {
	c := testCache(t, 1000)
	q(t, c, 1, "select ra from photoobj where ra < 300", 5000)
	if c.Len() != 0 || c.Used() != 0 {
		t.Fatal("oversized result should not be admitted")
	}
}

func TestCapacityNeverExceeded(t *testing.T) {
	c := testCache(t, 2000)
	for i := int64(1); i <= 50; i++ {
		lo := float64(i)
		stmt := &sqlparse.SelectStmt{
			Items: []sqlparse.SelectItem{{Col: sqlparse.ColRef{Column: "ra"}}},
			From:  []sqlparse.TableRef{{Name: "photoobj"}},
			Where: []sqlparse.Condition{{
				Left: sqlparse.ColRef{Column: "ra"}, Between: true, Lo: lo, Hi: lo + 0.5,
			}},
		}
		c.Query(i, stmt, 300+i*10)
		if c.Used() > 2000 {
			t.Fatalf("used %d exceeds capacity", c.Used())
		}
	}
}
