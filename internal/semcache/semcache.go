// Package semcache implements a semantic (query-result) cache with
// containment matching, the alternative Section 6.1 of the paper
// weighs and rejects for astronomy workloads: "Semantic caching is
// attractive for database federations because it preserves their
// filtering benefits... However, we find that astronomy workloads do
// not exhibit query reuse and query containment upon which semantic
// caching relies."
//
// The cache stores the results of single-table selection queries. A
// new query is a hit when some cached entry can answer it: same
// table, the entry projects every column the query needs (projected
// or filtered), and the query's predicate region is contained in the
// entry's region, so the answer can be computed by filtering the
// cached result. Full containment checking is NP-complete for
// conjunctive queries (Chandra & Merlin); for this SQL subset —
// conjunctions of per-column intervals — region containment is exact
// and cheap.
//
// This package exists to regenerate the paper's negative result: on
// the synthesized SDSS workloads the hit rate is negligible (see the
// xsem experiment), which is precisely why bypass-yield caching works
// at the granularity of schema elements instead.
package semcache

import (
	"math"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/sqlparse"
)

// entry is one cached query result.
type entry struct {
	table string
	// cols are the columns materialized in the cached result.
	cols map[string]bool
	// region maps column name → [lo, hi] interval; absent columns are
	// unconstrained.
	region map[string][2]float64
	bytes  int64
	last   int64
}

// Cache is a semantic query cache with LRU eviction.
type Cache struct {
	schema    *catalog.Schema
	capacity  int64
	used      int64
	entries   []*entry
	hits      int64
	misses    int64
	rejected  int64 // queries outside the cacheable subset
	evictions int64
}

// New returns a semantic cache of the given byte capacity over a
// schema.
func New(s *catalog.Schema, capacity int64) *Cache {
	return &Cache{schema: s, capacity: capacity}
}

// Stats reports hit/miss/rejected counts and evictions.
func (c *Cache) Stats() (hits, misses, rejected, evictions int64) {
	return c.hits, c.misses, c.rejected, c.evictions
}

// Used reports the bytes of cached results.
func (c *Cache) Used() int64 { return c.used }

// Len reports the number of cached results.
func (c *Cache) Len() int { return len(c.entries) }

// Query presents one statement with its result size and returns the
// decision: Hit when a cached result answers it (zero WAN traffic),
// Bypass otherwise (the result ships from the server and, if the
// query is cacheable, is admitted).
func (c *Cache) Query(t int64, stmt *sqlparse.SelectStmt, resultBytes int64) core.Decision {
	q, ok := c.describe(stmt)
	if !ok {
		c.rejected++
		return core.Bypass
	}
	for _, e := range c.entries {
		if e.answers(q) {
			e.last = t
			c.hits++
			return core.Hit
		}
	}
	c.misses++
	c.admit(t, q, resultBytes)
	return core.Bypass
}

// describe normalizes a statement into a cacheable entry descriptor;
// ok is false for statements outside the cacheable subset (joins,
// aggregates, TOP, star over unknown schema, column-column
// predicates).
func (c *Cache) describe(stmt *sqlparse.SelectStmt) (*entry, bool) {
	if len(stmt.From) != 1 || stmt.Top > 0 || stmt.HasAggregate() ||
		stmt.GroupBy != nil || stmt.OrderBy != nil {
		return nil, false
	}
	tab := c.schema.Table(stmt.From[0].Name)
	if tab == nil {
		return nil, false
	}
	e := &entry{
		table:  tab.Name,
		cols:   make(map[string]bool),
		region: make(map[string][2]float64),
	}
	for _, item := range stmt.Items {
		if item.Star {
			for i := range tab.Columns {
				e.cols[tab.Columns[i].Name] = true
			}
			continue
		}
		if tab.Column(item.Col.Column) == nil {
			return nil, false
		}
		e.cols[item.Col.Column] = true
	}
	for _, cond := range stmt.Where {
		if cond.RightCol != nil {
			return nil, false
		}
		col := tab.Column(cond.Left.Column)
		if col == nil {
			return nil, false
		}
		lo, hi := conditionInterval(cond, col)
		if prev, ok := e.region[col.Name]; ok {
			lo, hi = math.Max(lo, prev[0]), math.Min(hi, prev[1])
		}
		e.region[col.Name] = [2]float64{lo, hi}
		// The cached result must carry filter columns so contained
		// queries can be answered by re-filtering.
		e.cols[col.Name] = true
	}
	return e, true
}

// conditionInterval converts a literal condition into an interval.
// Non-range operators (<>) widen to the full column span — they never
// help containment.
func conditionInterval(cond sqlparse.Condition, col *catalog.Column) (lo, hi float64) {
	if cond.Between {
		return cond.Lo, cond.Hi
	}
	switch cond.Op {
	case sqlparse.OpEq:
		return cond.Value, cond.Value
	case sqlparse.OpLt, sqlparse.OpLe:
		return col.Min, cond.Value
	case sqlparse.OpGt, sqlparse.OpGe:
		return cond.Value, col.Max
	default:
		return col.Min, col.Max
	}
}

// answers reports whether the entry can serve the query: same table,
// superset of needed columns, and the query's region contained in the
// entry's region.
func (e *entry) answers(q *entry) bool {
	if e.table != q.table {
		return false
	}
	for col := range q.cols {
		if !e.cols[col] {
			return false
		}
	}
	// Every constraint the entry applied must be at least as loose as
	// the query's constraint on that column; otherwise the entry's
	// result is missing rows the query needs.
	for col, er := range e.region {
		qr, ok := q.region[col]
		if !ok {
			return false // query unconstrained where the entry filtered
		}
		if qr[0] < er[0] || qr[1] > er[1] {
			return false
		}
	}
	return true
}

// admit stores a query's result, evicting least-recently-used entries
// to fit. Results larger than the whole cache are not admitted.
func (c *Cache) admit(t int64, q *entry, bytes int64) {
	if bytes <= 0 || bytes > c.capacity {
		return
	}
	q.bytes = bytes
	q.last = t
	for c.used+bytes > c.capacity {
		c.evictLRU()
	}
	c.entries = append(c.entries, q)
	c.used += bytes
}

func (c *Cache) evictLRU() {
	oldest := -1
	for i, e := range c.entries {
		if oldest < 0 || e.last < c.entries[oldest].last {
			oldest = i
		}
	}
	if oldest < 0 {
		return
	}
	c.used -= c.entries[oldest].bytes
	c.entries = append(c.entries[:oldest], c.entries[oldest+1:]...)
	c.evictions++
}
