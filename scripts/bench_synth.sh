#!/bin/sh
# bench_synth.sh — the bench-synth harness: stand up a real two-node
# federation (bydbd for the photo and spec sites; the meta site runs
# in the proxy's local-simulation mode), binary-search the saturation
# knee through bysynth over the wire protocol, and leave the JSON
# report in BENCH_synth.json — then gate it against the committed
# baseline so a perf regression fails the build.
#
# Everything binds to fixed loopback ports in the 171xx range so a
# crashed previous run can't leave us fighting over 7100.
set -eu

GO=${GO:-go}
OUT=${OUT:-BENCH_synth.json}
BIN=$(mktemp -d)
PHOTO_ADDR=127.0.0.1:17101
SPEC_ADDR=127.0.0.1:17102
PROXY_ADDR=127.0.0.1:17100

cleanup() {
    kill "$PROXY_PID" "$PHOTO_PID" "$SPEC_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$BIN"
}

$GO build -o "$BIN" ./cmd/bydbd ./cmd/byproxyd ./cmd/bysynth ./cmd/benchgate

# -sample 100000 keeps data synthesis fast; yields are logical either
# way, so the byte accounting is unaffected.
"$BIN"/bydbd -site photo.sdss.org -addr $PHOTO_ADDR -sample 100000 -seed 1 &
PHOTO_PID=$!
"$BIN"/bydbd -site spec.sdss.org -addr $SPEC_ADDR -sample 100000 -seed 1 &
SPEC_PID=$!
"$BIN"/byproxyd -addr $PROXY_ADDR -sample 100000 -seed 1 \
    -nodes "photo.sdss.org=$PHOTO_ADDR,spec.sdss.org=$SPEC_ADDR" &
PROXY_PID=$!
trap cleanup EXIT INT TERM

# -wait absorbs daemon startup (data synthesis takes a moment). The
# saturation scenario is the perf number this harness exists to
# produce: constant-rate probes double until one misses the 500ms
# objective or sheds, then bisect — the knee is the max RPS the proxy
# sustains. The report's top-level numbers are the best passing
# probe's (the steady-era schema), with the probe trail under
# "saturation". -slo-fail still gates the knee probe's attainment.
"$BIN"/bysynth -addr $PROXY_ADDR -scenario saturation -wait 30s -out "$OUT" \
    -sat-probe "${SAT_PROBE:-4s}" -slo-fail "${SLO_FAIL:-0.90}"

echo
cat "$OUT"

# Regression gate against the committed baseline: achieved RPS or the
# knee dropping, or p99 drifting up, beyond tolerance fails the run.
# Skipped when no baseline is committed yet (fresh tree) or git is
# unavailable (extracted tarball). Tolerances default wide because CI
# runners are noisy; override with RPS_DROP / P99_DRIFT.
BASELINE=$(mktemp)
trap 'rm -f "$BASELINE"; cleanup' EXIT INT TERM
if git show HEAD:BENCH_synth.json > "$BASELINE" 2>/dev/null && [ -s "$BASELINE" ]; then
    "$BIN"/benchgate -baseline "$BASELINE" -fresh "$OUT" \
        -max-rps-drop "${RPS_DROP:-0.30}" -max-p99-drift "${P99_DRIFT:-1.0}"
else
    echo "benchgate: no committed BENCH_synth.json baseline; gate skipped"
fi
