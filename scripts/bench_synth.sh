#!/bin/sh
# bench_synth.sh — the bench-synth harness: stand up a real two-node
# federation (bydbd for the photo and spec sites; the meta site runs
# in the proxy's local-simulation mode), run the canned steady
# scenario through bysynth over the wire protocol, and leave the JSON
# report in BENCH_synth.json.
#
# Everything binds to fixed loopback ports in the 171xx range so a
# crashed previous run can't leave us fighting over 7100.
set -eu

GO=${GO:-go}
OUT=${OUT:-BENCH_synth.json}
BIN=$(mktemp -d)
PHOTO_ADDR=127.0.0.1:17101
SPEC_ADDR=127.0.0.1:17102
PROXY_ADDR=127.0.0.1:17100

cleanup() {
    kill "$PROXY_PID" "$PHOTO_PID" "$SPEC_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$BIN"
}

$GO build -o "$BIN" ./cmd/bydbd ./cmd/byproxyd ./cmd/bysynth

# -sample 100000 keeps data synthesis fast; yields are logical either
# way, so the byte accounting is unaffected.
"$BIN"/bydbd -site photo.sdss.org -addr $PHOTO_ADDR -sample 100000 -seed 1 &
PHOTO_PID=$!
"$BIN"/bydbd -site spec.sdss.org -addr $SPEC_ADDR -sample 100000 -seed 1 &
SPEC_PID=$!
"$BIN"/byproxyd -addr $PROXY_ADDR -sample 100000 -seed 1 \
    -nodes "photo.sdss.org=$PHOTO_ADDR,spec.sdss.org=$SPEC_ADDR" &
PROXY_PID=$!
trap cleanup EXIT INT TERM

# -wait absorbs daemon startup (data synthesis takes a moment); the
# steady scenario is 100 rps for 10s against the EDR release.
# -slo-fail makes the run a real perf gate: below SLO_FAIL attainment
# of the default 500ms objective, bysynth (and so CI) exits nonzero —
# after writing the full report, which carries the flight recorder's
# tail attribution explaining which phase or site ate the budget.
"$BIN"/bysynth -addr $PROXY_ADDR -scenario steady -wait 30s -out "$OUT" \
    -slo-fail "${SLO_FAIL:-0.90}"

echo
cat "$OUT"
