# bench_proxy.awk — distills the bench-proxy runs (proxy throughput,
# frame encoder, decide-phase contention) into BENCH_proxy.json.
# `go test -bench` lines carry a variable number of metric columns, so
# values are located by their unit token rather than field position.

function val(unit,    i) {
	for (i = 2; i <= NF; i++)
		if ($i == unit)
			return $(i - 1)
	return "0"
}

/^BenchmarkProxyThroughput\/serial/ {
	serial_qps = val("queries/sec")
	serial_p50 = val("p50-us")
	serial_p99 = val("p99-us")
}
/^BenchmarkProxyThroughput\/concurrent8/ {
	conc_qps = val("queries/sec")
	conc_p50 = val("p50-us")
	conc_p99 = val("p99-us")
}
/^BenchmarkWriteFrame/ {
	fns = val("ns/op")
	fallocs = val("allocs/op")
}
/^BenchmarkMediatorDecide\// {
	split($1, parts, "/")
	cfg = parts[2]
	mode = parts[3]
	sub(/-[0-9]+$/, "", mode)
	dns[cfg "/" mode] = val("ns/op")
	dlw[cfg "/" mode] = val("lockwait-us/op")
	if (!(cfg in seen)) {
		order[++ncfg] = cfg
		seen[cfg] = 1
	}
}
END {
	printf "{\n"
	printf "  \"serial\": {\"qps\": %s, \"p50_us\": %s, \"p99_us\": %s},\n", serial_qps, serial_p50, serial_p99
	printf "  \"concurrent8\": {\"qps\": %s, \"p50_us\": %s, \"p99_us\": %s},\n", conc_qps, conc_p50, conc_p99
	printf "  \"speedup\": %.2f,\n", conc_qps / serial_qps
	printf "  \"write_frame\": {\"ns_per_op\": %s, \"allocs_per_op\": %s},\n", fns, fallocs
	printf "  \"decide_contention\": {\n"
	printf "    \"note\": \"lockwait_us_per_op is time blocked on decision-partition locks per query — the serialization the sharded plane removes; ns/op additionally reflects host core count (a single-core host cannot show wall-clock parallel speedup)\",\n"
	for (i = 1; i <= ncfg; i++) {
		cfg = order[i]
		printf "    \"%s\": {\"disjoint\": {\"ns_per_op\": %s, \"lockwait_us_per_op\": %s}, \"overlap\": {\"ns_per_op\": %s, \"lockwait_us_per_op\": %s}}%s\n", \
			cfg, dns[cfg "/disjoint"], dlw[cfg "/disjoint"], dns[cfg "/overlap"], dlw[cfg "/overlap"], (i < ncfg ? "," : "")
	}
	printf "  }\n}\n"
}
