// Federation example: a complete SkyQuery-style deployment in one
// process — three database nodes (one per SDSS site), the
// mediator-collocated bypass-yield proxy, and a client — wired over
// real TCP sockets on localhost.
//
// The client runs the paper's example join plus a burst of region
// scans, and prints how each query's objects were handled (bypass →
// load → hit) and the proxy's final flow accounting.
//
//	go run ./examples/federation
package main

import (
	"fmt"
	"log"
	"time"

	"bypassyield/internal/catalog"
	"bypassyield/internal/core"
	"bypassyield/internal/engine"
	"bypassyield/internal/federation"
	"bypassyield/internal/wire"
)

const paperJoin = `select p.objID, p.ra, p.dec, p.modelMag_g, s.z as redshift
 from SpecObj s, PhotoObj p
 where p.ObjID = s.ObjID and s.specClass = 2 and s.zConf > 0.95
 and p.modelMag_g > 17.0 and s.z < 0.01`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s := catalog.EDR()
	// One engine instance stands in for every site's data (the same
	// seed everywhere keeps them consistent); ownership is enforced
	// per query by each node.
	db, err := engine.Open(s, engine.Config{SampleEvery: 20000, Seed: 1})
	if err != nil {
		return err
	}

	// Start one database node per site.
	sites := map[string]bool{}
	for i := range s.Tables {
		sites[s.Tables[i].Site] = true
	}
	addrs := map[string]string{}
	for site := range sites {
		node := wire.NewDBNode(site, db)
		addr, err := node.Listen("127.0.0.1:0")
		if err != nil {
			return err
		}
		defer node.Close()
		addrs[site] = addr
		fmt.Printf("node  %-16s %s\n", site, addr)
	}

	// The proxy: mediator + bypass-yield cache at 40% of the release.
	capacity := s.TotalBytes() * 4 / 10
	policy := core.NewRateProfile(core.RateProfileConfig{Capacity: capacity})
	med, err := federation.New(federation.Config{
		Schema: s, Engine: db, Policy: policy, Granularity: federation.Columns,
	})
	if err != nil {
		return err
	}
	proxy := wire.NewProxy(med, federation.Columns, addrs)
	paddr, err := proxy.Listen("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer proxy.Close()
	fmt.Printf("proxy %-16s %s (cache %d MB)\n\n", "mediator", paddr, capacity>>20)

	client, err := wire.DialTimeout(paddr, 5*time.Second)
	if err != nil {
		return err
	}
	defer client.Close()

	queries := []string{
		paperJoin,
		"select count(*) from specobj where z < 0.3",
	}
	// A scan campaign over the photometric table: the same columns,
	// shifting sky regions — the paper's schema-locality pattern. The
	// cache rents (bypasses) until the cumulative yield justifies
	// loading the columns, then serves hits.
	for lo := 0; lo < 300; lo += 60 {
		queries = append(queries, fmt.Sprintf(
			"select ra, dec, modelmag_r from photoobj where ra between %d and %d", lo, lo+130))
	}
	queries = append(queries,
		"select z, zconf from specobj where z between 0.5 and 2.5",
		"select z, zconf from specobj where z between 1.0 and 3.0",
		"select z, zconf from specobj where z between 0.2 and 2.2",
	)
	for i, sql := range queries {
		res, err := client.Query(sql)
		if err != nil {
			return fmt.Errorf("query %d: %w", i+1, err)
		}
		fmt.Printf("Q%d: %d rows, %.2f MB yield\n", i+1, res.Rows, float64(res.Bytes)/1e6)
		for _, d := range res.Decisions {
			fmt.Printf("    %-7s %-28s %8.2f MB\n", d.Decision, d.Object, float64(d.Yield)/1e6)
		}
	}

	st, err := client.Stats()
	if err != nil {
		return err
	}
	a := st.Acct
	fmt.Printf("\npolicy %s: %d hits / %d bypasses / %d loads\n",
		st.Policy, a.Hits, a.Bypasses, a.Loads)
	fmt.Printf("WAN %.2f MB (bypass %.2f + fetch %.2f); delivered %.2f MB; byte hit rate %.0f%%\n",
		float64(a.WANBytes())/1e6, float64(a.BypassBytes)/1e6, float64(a.FetchBytes)/1e6,
		float64(a.DeliveredBytes())/1e6, a.ByteHitRate()*100)
	fmt.Printf("node transport: %d B tx, %d B rx\n", st.TransportTx, st.TransportRx)
	return nil
}
