// Policylab example: ablations over the design choices DESIGN.md
// calls out — the Rate-Profile episode parameters (c, k, γ), the
// choice of A_obj subroutine inside OnlineBY, and the metadata bound —
// all over the same scaled EDR trace.
//
//	go run ./examples/policylab
package main

import (
	"fmt"
	"log"

	"bypassyield/internal/core"
	"bypassyield/internal/federation"
	"bypassyield/internal/trace"
	"bypassyield/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	profile := workload.ScaledProfile(workload.EDRProfile(), 40)
	recs, err := workload.Generate(profile, federation.Columns)
	if err != nil {
		return err
	}
	reqs := trace.Requests(trace.Preprocess(recs))
	objs := federation.Objects(profile.Schema, federation.Columns, nil)
	capacity := profile.Schema.TotalBytes() * 4 / 10

	cost := func(p core.Policy) float64 {
		sim := &core.Simulator{Policy: p, Objects: objs}
		res, err := sim.Run(reqs)
		if err != nil {
			log.Fatal(err)
		}
		return float64(res.Acct.WANBytes()) / 1e9
	}

	fmt.Println("=== Episode decay tolerance c (paper: 0.5) ===")
	for _, c := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		ep := core.DefaultEpisodeConfig()
		ep.C = c
		p := core.NewRateProfile(core.RateProfileConfig{Capacity: capacity, Episodes: ep})
		fmt.Printf("  c = %.2f → %.2f GB\n", c, cost(p))
	}

	fmt.Println("=== Episode idle horizon k (paper: 1000) ===")
	for _, k := range []int64{50, 200, 1000, 5000} {
		ep := core.DefaultEpisodeConfig()
		ep.K = k
		p := core.NewRateProfile(core.RateProfileConfig{Capacity: capacity, Episodes: ep})
		fmt.Printf("  k = %-5d → %.2f GB\n", k, cost(p))
	}

	fmt.Println("=== Episode aging factor γ ===")
	for _, gamma := range []float64{0.1, 0.5, 0.9} {
		ep := core.DefaultEpisodeConfig()
		ep.Gamma = gamma
		p := core.NewRateProfile(core.RateProfileConfig{Capacity: capacity, Episodes: ep})
		fmt.Printf("  γ = %.1f  → %.2f GB\n", gamma, cost(p))
	}

	fmt.Println("=== Metadata bound (profiles retained) ===")
	for _, m := range []int{16, 64, 256, 0 /* unbounded default */} {
		p := core.NewRateProfile(core.RateProfileConfig{Capacity: capacity, MaxProfiles: m})
		label := fmt.Sprintf("%d", m)
		if m == 0 {
			label = "default"
		}
		fmt.Printf("  max profiles %-8s → %.2f GB\n", label, cost(p))
	}

	fmt.Println("=== A_obj subroutine inside OnlineBY ===")
	fmt.Printf("  landlord           → %.2f GB\n", cost(core.NewOnlineBY(core.NewLandlord(capacity))))
	fmt.Printf("  size-class marking → %.2f GB\n", cost(core.NewOnlineBY(core.NewSizeClassMarking(capacity))))

	fmt.Println("=== Reference points ===")
	fmt.Printf("  no caching         → %.2f GB\n", cost(core.NewNoCache()))
	fmt.Printf("  static optimal     → %.2f GB\n", cost(core.PlanStatic(capacity, reqs, objs)))
	return nil
}
