// SkyServer example: run a synthesized SDSS EDR workload (the
// paper's trace, scaled down 40×) through every cache policy at both
// object granularities and print the network-cost scoreboard.
//
// This is the "what should my federation deploy?" view: sequence cost
// (no caching) at the top, the in-line comparators, and the three
// bypass-yield algorithms, with the static-optimal oracle as the
// floor.
//
//	go run ./examples/skyserver
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bypassyield/internal/core"
	"bypassyield/internal/federation"
	"bypassyield/internal/trace"
	"bypassyield/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	profile := workload.ScaledProfile(workload.EDRProfile(), 40)
	fmt.Printf("workload: %s, %d queries (target %.1f GB)\n",
		profile.Name, profile.Queries, float64(profile.TargetSequenceCost)/1e9)

	for _, gran := range []federation.Granularity{federation.Tables, federation.Columns} {
		recs, err := workload.Generate(profile, gran)
		if err != nil {
			return err
		}
		recs = trace.Preprocess(recs)
		reqs := trace.Requests(recs)
		objs := federation.Objects(profile.Schema, gran, nil)
		capacity := profile.Schema.TotalBytes() * 4 / 10

		fmt.Printf("\n=== %s granularity (cache %d MB) ===\n", gran, capacity>>20)
		fmt.Printf("%-16s %12s %10s %8s %8s\n", "policy", "WAN (GB)", "hit rate", "loads", "evicts")

		policies := []core.Policy{
			core.NewNoCache(),
			core.NewLRU(capacity),
			core.NewLFU(capacity),
			core.NewGDS(capacity),
			core.NewGDSP(capacity),
			core.NewSpaceEffBY(core.NewLandlord(capacity), rand.NewSource(7)),
			core.NewOnlineBY(core.NewLandlord(capacity)),
			core.NewRateProfile(core.RateProfileConfig{Capacity: capacity}),
			core.PlanStatic(capacity, reqs, objs),
		}
		for _, p := range policies {
			sim := &core.Simulator{Policy: p, Objects: objs}
			res, err := sim.Run(reqs)
			if err != nil {
				return err
			}
			a := res.Acct
			fmt.Printf("%-16s %12.2f %9.0f%% %8d %8d\n",
				p.Name(), float64(a.WANBytes())/1e9, a.ByteHitRate()*100, a.Loads, a.Evictions)
		}
	}
	return nil
}
