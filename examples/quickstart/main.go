// Quickstart: the bypass-yield cache in a dozen lines.
//
// Two objects live at a remote site: a big table and a small one. A
// stream of queries yields partial results from each. The cache
// decides, per access, whether to serve in cache, load the object, or
// bypass to the server — minimizing total WAN traffic rather than
// local latency.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"bypassyield/internal/core"
)

func main() {
	big := core.Object{ID: "sky/photoobj", Size: 40 << 20, FetchCost: 40 << 20, Site: "photo"}
	small := core.Object{ID: "sky/specobj", Size: 8 << 20, FetchCost: 8 << 20, Site: "spec"}
	cold := core.Object{ID: "sky/mask", Size: 30 << 20, FetchCost: 30 << 20, Site: "meta"}

	// A cache smaller than the data: big and small fit together, cold
	// does not — and should never be loaded for its tiny yields.
	cache := core.NewRateProfile(core.RateProfileConfig{Capacity: 60 << 20})

	objects := map[core.ObjectID]core.Object{big.ID: big, small.ID: small, cold.ID: cold}
	var trace []core.Request
	for t := int64(1); t <= 200; t++ {
		// The workload hammers both science tables; every tenth query
		// probes the cold metadata table for a few hundred kilobytes.
		req := core.Request{Seq: t, Accesses: []core.Access{
			{Object: small.ID, Yield: 6 << 20},
			{Object: big.ID, Yield: 20 << 20},
		}}
		if t%10 == 0 {
			req.Accesses = append(req.Accesses, core.Access{Object: cold.ID, Yield: 512 << 10})
		}
		trace = append(trace, req)
	}

	sim := &core.Simulator{Policy: cache, Objects: objects}
	res, err := sim.Run(trace)
	if err != nil {
		panic(err)
	}

	noCache := &core.Simulator{Policy: core.NewNoCache(), Objects: objects}
	base, err := noCache.Run(trace)
	if err != nil {
		panic(err)
	}

	a := res.Acct
	fmt.Printf("queries:        %d (%d object accesses)\n", a.Queries, a.Accesses)
	fmt.Printf("decisions:      %d hits, %d bypasses, %d loads\n", a.Hits, a.Bypasses, a.Loads)
	fmt.Printf("WAN traffic:    %d MB (bypass %d MB + fetch %d MB)\n",
		a.WANBytes()>>20, a.BypassBytes>>20, a.FetchBytes>>20)
	fmt.Printf("without cache:  %d MB\n", base.Acct.WANBytes()>>20)
	fmt.Printf("savings:        %.1fx\n", float64(base.Acct.WANBytes())/float64(a.WANBytes()))
	fmt.Printf("byte hit rate:  %.0f%%\n", a.ByteHitRate()*100)
	fmt.Printf("cold cached:    %v (bypassed, as it should be)\n", cache.Contains(cold.ID))
}
