module bypassyield

go 1.22
